//! Experiment decomposition: one [`ExperimentPlan`] per experiment name.
//!
//! Every multi-benchmark experiment fans out into one cell per benchmark
//! (or per sweep point); the plan's assembly step collects the cell rows in
//! order and hands them to the matching [`render`](crate::render) function.
//! Single-measurement experiments (`fig1`, `fig12`) are one-cell plans, so
//! the scheduler treats every experiment uniformly.

use obs::{JsonValue, Registry};
use predictors::MarkovConfig;
use workloads::{Benchmark, TraceSource};

use crate::render;
use crate::sched::{Cell, CellOutput, ExperimentPlan};
use crate::RunParams;

/// The canonical experiment list (`all` expands to this).
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "fig1",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "fig16",
    "fig18a",
    "fig18b",
    "table2",
    "fig19",
    "ablate-queue",
    "ablate-filler",
    "ablate-confidence",
    "ablate-depth",
    "prefetch",
    "limit",
];

fn collect<T: 'static>(outs: Vec<CellOutput>) -> Vec<T> {
    outs.into_iter()
        .map(|o| *o.downcast::<T>().expect("cell output type"))
        .collect()
}

/// A one-cell plan: the whole experiment is a single unit of work.
fn single<'a, T: Send + 'static>(
    exp: &str,
    run: impl FnOnce(&mut Registry) -> T + Send + 'a,
    render: impl FnOnce(&T) -> (String, JsonValue) + 'a,
) -> ExperimentPlan<'a> {
    let cells = vec![Cell::new(exp, run)];
    ExperimentPlan::new(exp, cells, move |outs| {
        let rows = collect::<T>(outs);
        render(&rows[0])
    })
}

/// The common shape: one cell per benchmark, assembled in `Benchmark::ALL`
/// order.
fn per_bench<'a, T: Send + 'static>(
    exp: &str,
    source: &'a dyn TraceSource,
    params: RunParams,
    run: impl Fn(&dyn TraceSource, Benchmark, RunParams) -> T + Copy + Send + 'a,
    render: impl FnOnce(&[T]) -> (String, JsonValue) + 'a,
) -> ExperimentPlan<'a> {
    let cells = Benchmark::ALL
        .into_iter()
        .map(|bench| {
            Cell::new(format!("{exp}/{bench}"), move |_reg: &mut Registry| {
                run(source, bench, params)
            })
        })
        .collect();
    ExperimentPlan::new(exp, cells, move |outs| render(&collect::<T>(outs)))
}

/// Builds the plan for one validated experiment name.
///
/// # Panics
///
/// On a name not in [`ALL_EXPERIMENTS`] — callers validate names first.
pub fn plan_for<'a>(
    exp: &str,
    source: &'a dyn TraceSource,
    profile: RunParams,
    pipeline: RunParams,
) -> ExperimentPlan<'a> {
    match exp {
        "fig1" => single(
            exp,
            move |_reg| crate::fig1_on(source, profile),
            render::render_fig1,
        ),
        "fig8" => per_bench(exp, source, profile, crate::fig8_bench, |r| {
            render::render_fig8(r)
        }),
        "fig9" => {
            // fig9 cells publish gdiff.table.* gauges, so they take the
            // cell registry instead of going through per_bench.
            let cells = Benchmark::ALL
                .into_iter()
                .map(|bench| {
                    Cell::new(format!("{exp}/{bench}"), move |reg: &mut Registry| {
                        crate::fig9_bench_obs(source, bench, profile, reg)
                    })
                })
                .collect();
            ExperimentPlan::new(exp, cells, |outs| render::render_fig9(&collect(outs)))
        }
        "fig10" => per_bench(exp, source, profile, crate::fig10_bench, |r| {
            render::render_fig10(r)
        }),
        "fig12" => single(
            exp,
            move |_reg| crate::fig12_on(source, pipeline),
            render::render_fig12,
        ),
        "fig13" => per_bench(exp, source, pipeline, crate::fig13_bench, |r| {
            render::render_fig13(r)
        }),
        "fig16" => per_bench(exp, source, pipeline, crate::fig16_bench, |r| {
            render::render_fig16(r)
        }),
        "fig18a" => per_bench(
            exp,
            source,
            pipeline,
            |s, b, p| crate::fig18_bench(s, b, p, MarkovConfig::paper_256k()),
            |r| render::render_fig18(r, false),
        ),
        "fig18b" => per_bench(
            exp,
            source,
            pipeline,
            |s, b, p| crate::fig18_bench(s, b, p, MarkovConfig::paper_256k()),
            |r| render::render_fig18(r, true),
        ),
        "table2" => per_bench(exp, source, pipeline, crate::table2_bench, |r| {
            render::render_table2(r)
        }),
        "fig19" => per_bench(exp, source, pipeline, crate::fig19_bench, |r| {
            render::render_fig19(r)
        }),
        "ablate-queue" => per_bench(exp, source, profile, crate::ablate_queue_bench, |r| {
            render::render_ablate_queue(r)
        }),
        "ablate-filler" => per_bench(exp, source, pipeline, crate::ablate_filler_bench, |r| {
            render::render_ablate_filler(r)
        }),
        "ablate-confidence" => {
            let cells = crate::ablate_confidence_thresholds()
                .into_iter()
                .map(|thr| {
                    Cell::new(format!("{exp}/t{thr}"), move |_reg: &mut Registry| {
                        crate::ablate_confidence_point(source, thr, pipeline)
                    })
                })
                .collect();
            ExperimentPlan::new(exp, cells, |outs| {
                render::render_ablate_confidence(&collect(outs))
            })
        }
        "ablate-depth" => {
            let cells = crate::ablate_depth_points()
                .into_iter()
                .map(|point| {
                    Cell::new(format!("{exp}/d{}", point.0), move |_reg: &mut Registry| {
                        crate::ablate_depth_point(source, point, pipeline)
                    })
                })
                .collect();
            ExperimentPlan::new(exp, cells, |outs| {
                render::render_ablate_depth(&collect(outs))
            })
        }
        "prefetch" => per_bench(exp, source, pipeline, crate::prefetch_bench, |r| {
            render::render_prefetch(r)
        }),
        "limit" => per_bench(exp, source, pipeline, crate::limit_bench, |r| {
            render::render_limit(r)
        }),
        other => unreachable!("unknown experiment: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::SyntheticSource;

    #[test]
    fn every_experiment_has_a_plan_with_cells() {
        let src = SyntheticSource::new(42);
        for exp in ALL_EXPERIMENTS {
            let plan = plan_for(exp, &src, RunParams::tiny(), RunParams::tiny());
            assert_eq!(plan.name, exp);
            assert!(plan.cell_count() >= 1, "{exp} has no cells");
        }
    }

    #[test]
    fn multi_bench_experiments_fan_out_per_benchmark() {
        let src = SyntheticSource::new(42);
        let plan = plan_for("fig8", &src, RunParams::tiny(), RunParams::tiny());
        assert_eq!(plan.cell_count(), Benchmark::ALL.len());
        let plan = plan_for(
            "ablate-confidence",
            &src,
            RunParams::tiny(),
            RunParams::tiny(),
        );
        assert_eq!(plan.cell_count(), 4);
        let plan = plan_for("fig1", &src, RunParams::tiny(), RunParams::tiny());
        assert_eq!(plan.cell_count(), 1);
    }
}
