//! Comparing two machine-readable run reports (`bench-diff`).
//!
//! A committed `BENCH_<rev>.json` snapshot plus this diff turns the run
//! report into a regression gate: CI regenerates the report at the same
//! seed/scale and `harness bench-diff old.json new.json` fails (exit 3)
//! when any metric moved past the threshold.
//!
//! Only the `experiments` section is compared — it is the deterministic
//! surface (byte-identical for any `--jobs`, telemetry on or off). The
//! `timings` / `scheduler` / `metrics` sections carry wall-clock and
//! environment-shaped values that legitimately differ between machines.

use obs::JsonValue;

use crate::report::Table;

/// Default `--threshold`: relative deltas past this many percent fail.
pub const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

/// One compared metric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted path under `experiments` (array indices as `[i]`).
    pub path: String,
    /// Value in the old report (`None`: metric only in the new one).
    pub old: Option<f64>,
    /// Value in the new report (`None`: metric vanished).
    pub new: Option<f64>,
    /// Relative delta in percent (`None` when either side is missing, or
    /// infinite when the old value was zero and the new one is not).
    pub rel_pct: Option<f64>,
}

impl DiffRow {
    /// Whether this row trips the gate at `threshold_pct`.
    ///
    /// A metric that appeared or vanished always trips: a renamed leaf is
    /// a schema change the snapshot must be regenerated for, not noise.
    pub fn breaches(&self, threshold_pct: f64) -> bool {
        match (self.old, self.new) {
            (Some(_), Some(_)) => self
                .rel_pct
                .map(|d| d.abs() > threshold_pct)
                .unwrap_or(true),
            _ => true,
        }
    }
}

/// The comparison of two reports' `experiments` sections.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every metric leaf seen in either report, old-report order first.
    pub rows: Vec<DiffRow>,
    /// Gate threshold the report was built with (percent).
    pub threshold_pct: f64,
}

impl DiffReport {
    /// The rows that trip the gate.
    pub fn breaches(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.breaches(self.threshold_pct))
            .collect()
    }

    /// Renders the per-metric delta table. With `full`, every compared
    /// leaf is listed; otherwise only rows with a nonzero delta.
    pub fn render(&self, full: bool) -> String {
        let mut t = Table::new(
            format!("bench-diff (threshold {:.2}%)", self.threshold_pct),
            &["metric", "old", "new", "delta", ""],
        );
        let mut shown = 0usize;
        for r in &self.rows {
            let changed = r.old != r.new;
            if !full && !changed {
                continue;
            }
            shown += 1;
            t.row(vec![
                r.path.clone(),
                r.old.map(fmt_num).unwrap_or_else(|| "-".into()),
                r.new.map(fmt_num).unwrap_or_else(|| "-".into()),
                match r.rel_pct {
                    Some(d) if d.is_finite() => format!("{d:+.2}%"),
                    Some(_) => "inf".into(),
                    None => "-".into(),
                },
                if r.breaches(self.threshold_pct) {
                    "FAIL".into()
                } else {
                    String::new()
                },
            ]);
        }
        let mut out = t.render();
        if shown == 0 {
            out.push_str("(no differences)\n");
        }
        out
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Flattens every numeric leaf under `v` into `(dotted.path, value)`
/// pairs, in document order. Array elements index as `path[i]`.
pub fn numeric_leaves(v: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(String::new(), v, &mut out);
    out
}

fn walk(prefix: String, v: &JsonValue, out: &mut Vec<(String, f64)>) {
    match v {
        JsonValue::Num(n) => out.push((prefix, *n)),
        JsonValue::Obj(entries) => {
            for (k, child) in entries {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(p, child, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(format!("{prefix}[{i}]"), child, out);
            }
        }
        // Strings/bools/nulls (benchmark names, schema tags) are labels,
        // not measurements.
        _ => {}
    }
}

/// Compares the `experiments` sections of two parsed run reports.
///
/// Returns an error when either report has no `experiments` object —
/// diffing anything else would silently compare the wrong surface.
pub fn diff_reports(
    old: &JsonValue,
    new: &JsonValue,
    threshold_pct: f64,
) -> Result<DiffReport, String> {
    let old_exp = old
        .get("experiments")
        .ok_or("old report has no `experiments` section")?;
    let new_exp = new
        .get("experiments")
        .ok_or("new report has no `experiments` section")?;
    let old_leaves = numeric_leaves(old_exp);
    let new_leaves = numeric_leaves(new_exp);

    let mut rows = Vec::with_capacity(old_leaves.len().max(new_leaves.len()));
    for (path, old_v) in &old_leaves {
        let new_v = new_leaves.iter().find(|(p, _)| p == path).map(|(_, v)| *v);
        let rel_pct = new_v.map(|n| rel_delta_pct(*old_v, n));
        rows.push(DiffRow {
            path: path.clone(),
            old: Some(*old_v),
            new: new_v,
            rel_pct,
        });
    }
    for (path, new_v) in &new_leaves {
        if !old_leaves.iter().any(|(p, _)| p == path) {
            rows.push(DiffRow {
                path: path.clone(),
                old: None,
                new: Some(*new_v),
                rel_pct: None,
            });
        }
    }
    Ok(DiffReport {
        rows,
        threshold_pct,
    })
}

fn rel_delta_pct(old: f64, new: f64) -> f64 {
    if old == new {
        0.0
    } else if old == 0.0 {
        f64::INFINITY
    } else {
        100.0 * (new - old) / old.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(acc: f64, rows: &[f64]) -> JsonValue {
        JsonValue::object().with(
            "experiments",
            JsonValue::object().with(
                "fig8",
                JsonValue::object().with("accuracy", acc).with(
                    "rows",
                    JsonValue::Arr(
                        rows.iter()
                            .map(|v| JsonValue::object().with("stride", *v))
                            .collect(),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn identical_reports_have_no_breaches() {
        let a = report(0.85, &[1.0, 2.0]);
        let d = diff_reports(&a, &a, 5.0).unwrap();
        assert_eq!(d.rows.len(), 3);
        assert!(d.breaches().is_empty());
        assert!(d.render(false).contains("no differences"));
    }

    #[test]
    fn paths_cover_arrays_and_nesting() {
        let a = report(0.85, &[1.0, 2.0]);
        let paths: Vec<String> = numeric_leaves(a.get("experiments").unwrap())
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(
            paths,
            vec![
                "fig8.accuracy",
                "fig8.rows[0].stride",
                "fig8.rows[1].stride"
            ]
        );
    }

    #[test]
    fn threshold_separates_noise_from_regression() {
        let old = report(0.800, &[1.0]);
        let new = report(0.808, &[1.2]); // +1% and +20%
        let d = diff_reports(&old, &new, 5.0).unwrap();
        let breaches = d.breaches();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].path, "fig8.rows[0].stride");
        assert!((breaches[0].rel_pct.unwrap() - 20.0).abs() < 1e-9);
        // A looser gate passes both.
        let d = diff_reports(&old, &new, 25.0).unwrap();
        assert!(d.breaches().is_empty());
    }

    #[test]
    fn appearing_and_vanishing_metrics_always_breach() {
        let old = report(0.85, &[1.0, 2.0]);
        let new = report(0.85, &[1.0]); // rows[1] vanished
        let d = diff_reports(&old, &new, 100.0).unwrap();
        let b = d.breaches();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].path, "fig8.rows[1].stride");
        assert_eq!(b[0].new, None);
        // And the reverse direction: a metric only in the new report.
        let d = diff_reports(&new, &old, 100.0).unwrap();
        let b = d.breaches();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].old, None);
    }

    #[test]
    fn zero_baseline_going_nonzero_is_infinite() {
        let old = report(0.0, &[]);
        let new = report(0.5, &[]);
        let d = diff_reports(&old, &new, 1000.0).unwrap();
        let b = d.breaches();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].rel_pct, Some(f64::INFINITY));
        assert!(d.render(true).contains("inf"));
    }

    #[test]
    fn missing_experiments_section_is_an_error() {
        let bad = JsonValue::object().with("schema", "x");
        let good = report(0.85, &[]);
        assert!(diff_reports(&bad, &good, 5.0).is_err());
        assert!(diff_reports(&good, &bad, 5.0).is_err());
    }
}
