//! The sweep engine: resumable, multi-process, work-stealing grid runs.
//!
//! `harness sweep` expands a [`GridSpec`] into thousands of (config,
//! benchmark) cells and fans them across worker *processes*, each running
//! cells on its own thread pool ([`crate::sched::run_dynamic`]). The
//! processes coordinate through the checkpoint directory alone:
//!
//! * `grid.spec` — the grid's canonical form; its CRC32 is the grid hash
//!   every segment carries, so a resume against an edited grid is refused
//!   instead of silently remapping cell ids;
//! * `claims/c<id>` — atomic cell claims (`File::create_new`): whichever
//!   process creates the file owns the cell. Workers claim their own
//!   contiguous shard front-to-back, then **steal from other shards
//!   tail-first**, so a straggler loses the work it hasn't started, not
//!   the cell it is computing;
//! * `worker-<k>.ckpt` — one [`tracefile::ckpt`] segment per worker,
//!   one CRC-framed record per completed cell, flushed per cell.
//!
//! A killed sweep resumes by reading the segments back: completed cells
//! are skipped, damaged records are reported (one structured
//! [`obs::log`] error each) and recomputed, and the in-flight cell a
//! kill tore mid-record costs exactly itself. The checkpoint payload is
//! **integer event counts only** — accuracy, coverage and conflict rates
//! are derived at render time — because integers below 2⁵³ round-trip
//! JSON bit-exactly where pre-divided ratios need not, and bit-exact
//! payloads are what make resumed output byte-identical.
//!
//! Determinism: the final tables, the `--out` report, and the merged
//! metrics registry are a pure function of the (complete) cell-counts
//! map, assembled in grid order via [`Registry::merge`]. Worker count,
//! thread count, steal pattern, and interrupt/resume splits can only
//! change *which process* computes a cell, never the bytes that come
//! out. Wall-clock and per-worker attribution go to stderr, the journal,
//! the timeline, and live metrics — never into the deterministic
//! surfaces.

use std::collections::BTreeMap;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use gdiff::GDiffPredictor;
use obs::{JsonValue, Registry, SharedRegistry};
use predictors::{Capacity, ConfidenceConfig, ConfidenceTable};
use tracefile::ckpt::{count_ckpt_records, read_ckpt, CkptDamage, CkptRecord, CkptWriter};
use workloads::SyntheticSource;

use crate::grid::{GridCell, GridSpec};
use crate::profile::run_profile_gated;
use crate::report::Table;
use crate::sched;
use crate::RunParams;

/// Schema tag of the `--out` report.
pub const SWEEP_SCHEMA: &str = "gdiff-sweep-report/v1";

/// Worker id recorded for cells the parent computed inline (straggler
/// recovery and `--workers 1`): one past the last child worker.
const MAIN_WORKER: u32 = u32::MAX;

/// How often the parent polls children for progress.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

// ---------------------------------------------------------------------
// Cell results
// ---------------------------------------------------------------------

/// The integer event counts one sweep cell produces — the checkpoint
/// payload. Every reported metric derives from these at render time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Measured value producers.
    pub total: u64,
    /// Producers for which gDiff ventured a prediction.
    pub predicted: u64,
    /// Correct predictions (ungated).
    pub correct: u64,
    /// Predictions the confidence gate endorsed.
    pub confident: u64,
    /// Endorsed predictions that were correct.
    pub confident_correct: u64,
    /// Prediction-table accesses (warmup included).
    pub table_accesses: u64,
    /// Prediction-table aliasing conflicts.
    pub table_conflicts: u64,
    /// Table storage footprint in bits after the run.
    pub table_bits: u64,
}

impl CellCounts {
    /// Serializes to the checkpoint payload (compact JSON, fixed key
    /// order — the same counts always give the same bytes).
    pub fn to_payload(&self) -> Vec<u8> {
        JsonValue::object()
            .with("total", self.total)
            .with("predicted", self.predicted)
            .with("correct", self.correct)
            .with("confident", self.confident)
            .with("confident_correct", self.confident_correct)
            .with("table_accesses", self.table_accesses)
            .with("table_conflicts", self.table_conflicts)
            .with("table_bits", self.table_bits)
            .to_json()
            .into_bytes()
    }

    /// Parses a checkpoint payload. A malformed payload is treated like a
    /// corrupt record by callers: reported, skipped, recomputed.
    pub fn from_payload(bytes: &[u8]) -> Result<CellCounts, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "payload is not UTF-8".to_string())?;
        let v = JsonValue::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("payload is missing '{k}'"))
        };
        Ok(CellCounts {
            total: field("total")?,
            predicted: field("predicted")?,
            correct: field("correct")?,
            confident: field("confident")?,
            confident_correct: field("confident_correct")?,
            table_accesses: field("table_accesses")?,
            table_conflicts: field("table_conflicts")?,
            table_bits: field("table_bits")?,
        })
    }

    fn add(&mut self, o: &CellCounts) {
        self.total += o.total;
        self.predicted += o.predicted;
        self.correct += o.correct;
        self.confident += o.confident;
        self.confident_correct += o.confident_correct;
        self.table_accesses += o.table_accesses;
        self.table_conflicts += o.table_conflicts;
        self.table_bits = self.table_bits.max(o.table_bits);
    }

    /// Ungated accuracy `correct / total`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.total)
    }

    /// Gated accuracy `confident_correct / confident`. With threshold 0
    /// (ungated cells) "confident" means "predicted", so this is the
    /// accuracy of the predictions made.
    pub fn gated_accuracy(&self) -> f64 {
        ratio(self.confident_correct, self.confident)
    }

    /// Coverage `confident / total`.
    pub fn coverage(&self) -> f64 {
        ratio(self.confident, self.total)
    }

    /// Table conflict rate `table_conflicts / table_accesses`.
    pub fn conflict_rate(&self) -> f64 {
        ratio(self.table_conflicts, self.table_accesses)
    }

    /// Publishes the counts onto a registry — the per-cell registry whose
    /// grid-order [`Registry::merge`] into the master is the sweep's
    /// deterministic-metrics anchor. `sweep.table_bits.max` max-merges
    /// (the `.max` gauge rule), everything else sums.
    pub fn publish(&self, reg: &mut Registry) {
        let c = reg.counter("sweep.cells");
        reg.inc(c);
        for (name, v) in [
            ("sweep.producers", self.total),
            ("sweep.predicted", self.predicted),
            ("sweep.correct", self.correct),
            ("sweep.confident", self.confident),
            ("sweep.confident_correct", self.confident_correct),
            ("sweep.table.accesses", self.table_accesses),
            ("sweep.table.conflicts", self.table_conflicts),
        ] {
            let c = reg.counter(name);
            reg.add(c, v);
        }
        let g = reg.gauge("sweep.table_bits.max");
        if self.table_bits as f64 > reg.gauge_value(g) {
            reg.set_gauge(g, self.table_bits as f64);
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs one grid cell: a confidence-gated profile-mode run of gDiff at
/// the cell's (order, depth, threshold, delay) over the cell's benchmark.
pub fn run_cell_counts(cell: GridCell, params: RunParams) -> CellCounts {
    let cap = if cell.depth == 0 {
        Capacity::Unbounded
    } else {
        Capacity::Entries(cell.depth)
    };
    let mut p = GDiffPredictor::with_delay(cap, cell.order, cell.delay);
    let mut conf = (cell.threshold > 0).then(|| {
        ConfidenceTable::new(
            cap,
            ConfidenceConfig {
                threshold: cell.threshold,
                ..ConfidenceConfig::default()
            },
        )
    });
    let source = SyntheticSource::new(params.seed);
    let stats = run_profile_gated(&source, cell.bench, &mut p, conf.as_mut(), params);
    let geometry = p.core().geometry();
    CellCounts {
        total: stats.total(),
        predicted: stats.predicted(),
        correct: stats.correct(),
        confident: stats.confident(),
        confident_correct: stats.confident_correct(),
        table_accesses: p.core().table_accesses(),
        table_conflicts: p.core().table_conflicts(),
        table_bits: geometry.bytes * 8,
    }
}

// ---------------------------------------------------------------------
// Checkpoint directory
// ---------------------------------------------------------------------

fn claims_dir(dir: &Path) -> PathBuf {
    dir.join("claims")
}

fn spec_path(dir: &Path) -> PathBuf {
    dir.join("grid.spec")
}

fn segment_path(dir: &Path, worker: u32) -> PathBuf {
    if worker == MAIN_WORKER {
        dir.join("worker-main.ckpt")
    } else {
        dir.join(format!("worker-{worker}.ckpt"))
    }
}

/// All checkpoint segments in the directory, sorted by file name so scan
/// order (and therefore duplicate-resolution order) is deterministic.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    out.sort();
    out
}

/// Prepares the checkpoint directory for a sweep of `grid`.
///
/// Creates it if missing and pins the grid: an existing `grid.spec` that
/// differs from this grid is an error unless `fresh` wipes the directory.
/// Claims are cleared unconditionally — they only mean something while
/// worker processes are alive, and a stale claim from a killed run would
/// orphan its cell forever.
pub fn prepare_dir(dir: &Path, grid: &GridSpec, fresh: bool) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let spec = spec_path(dir);
    let canonical = grid.canonical();
    let existing = std::fs::read_to_string(&spec).ok();
    let mismatch = existing.as_deref().is_some_and(|t| t != canonical);
    if mismatch && !fresh {
        return Err(format!(
            "{} holds checkpoints for a different grid; \
             re-run with --fresh to discard them",
            dir.display()
        ));
    }
    if fresh {
        for seg in segments(dir) {
            std::fs::remove_file(&seg)
                .map_err(|e| format!("cannot remove {}: {e}", seg.display()))?;
        }
        std::fs::remove_file(&spec).ok();
    }
    std::fs::remove_dir_all(claims_dir(dir)).ok();
    std::fs::create_dir_all(claims_dir(dir))
        .map_err(|e| format!("cannot create claims dir: {e}"))?;
    std::fs::write(&spec, canonical)
        .map_err(|e| format!("cannot write {}: {e}", spec.display()))?;
    Ok(())
}

/// Reads every segment back into a cell → counts map.
///
/// Damage never aborts the sweep: a damaged or unreadable record is
/// logged (one structured [`obs::log::error`] per incident, mirrored to
/// stderr) and its cell is simply recomputed. With `repair` set, a
/// damaged segment is rewritten to its intact prefix so that reopening
/// it for append cannot hide new records behind torn bytes — only the
/// single coordinating parent may do this; workers read, never repair.
pub fn load_completed(dir: &Path, grid: &GridSpec, repair: bool) -> BTreeMap<u32, CellCounts> {
    let hash = grid.hash();
    let n = grid.cell_count();
    let mut completed = BTreeMap::new();
    for seg in segments(dir) {
        let read = match read_ckpt(&seg, hash) {
            Ok(r) => r,
            Err(e) => {
                report_damage(&seg, "unreadable checkpoint segment", &format!("{e}"), None);
                continue;
            }
        };
        let mut intact: Vec<CkptRecord> = Vec::with_capacity(read.records.len());
        for rec in read.records {
            if rec.cell >= n {
                report_damage(
                    &seg,
                    "checkpoint record for a cell outside the grid",
                    &format!("cell {} of {n}", rec.cell),
                    Some(rec.cell),
                );
                continue;
            }
            match CellCounts::from_payload(&rec.payload) {
                Ok(counts) => {
                    completed.insert(rec.cell, counts);
                    intact.push(rec);
                }
                Err(reason) => report_damage(
                    &seg,
                    "undecodable checkpoint payload",
                    &reason,
                    Some(rec.cell),
                ),
            }
        }
        if let Some(damage) = read.damage {
            let cell = match &damage {
                CkptDamage::Corrupt { cell, .. } => Some(*cell),
                CkptDamage::TornTail { .. } => None,
            };
            report_damage(
                &seg,
                "checkpoint damage; affected cells will be recomputed",
                &format!("{damage}"),
                cell,
            );
            if repair {
                if let Err(e) = rewrite_segment(&seg, hash, &intact) {
                    eprintln!(
                        "warning: sweep: cannot repair {}: {e} (segment dropped)",
                        seg.display()
                    );
                    for rec in &intact {
                        completed.remove(&rec.cell);
                    }
                    std::fs::remove_file(&seg).ok();
                }
            }
        }
    }
    completed
}

fn report_damage(seg: &Path, msg: &'static str, detail: &str, cell: Option<u32>) {
    eprintln!(
        "warning: sweep: {}: {msg}: {detail}{}",
        seg.display(),
        cell.map(|c| format!(" (cell {c})")).unwrap_or_default()
    );
    obs::log::error(
        "harness.sweep",
        msg,
        &[
            ("segment", obs::log::Value::from(&*seg.to_string_lossy())),
            ("detail", obs::log::Value::from(detail)),
            ("cell", obs::log::Value::from(cell.map_or(-1, |c| c as i64))),
        ],
    );
}

/// Rewrites a segment to exactly `records` via a temp file + rename, so a
/// kill during repair can never make things worse.
fn rewrite_segment(seg: &Path, hash: u32, records: &[CkptRecord]) -> std::io::Result<()> {
    let tmp = seg.with_extension("ckpt.tmp");
    let mut w = CkptWriter::create(&tmp, hash)?;
    for rec in records {
        w.append(rec.cell, rec.worker, &rec.payload)?;
    }
    drop(w);
    std::fs::rename(&tmp, seg)
}

// ---------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------

/// The candidate claim order for worker `k` of `w`: its own contiguous
/// shard front-to-back, then every other shard back-to-front (nearest
/// shard first). Stealing from the tail means the victim — which works
/// its shard front-to-back — loses the cells it would reach *last*.
fn claim_order(n: u32, k: u32, w: u32) -> Vec<u32> {
    let shard = |i: u32| -> std::ops::Range<u32> {
        let w64 = w as u64;
        ((i as u64) * (n as u64) / w64) as u32..(((i as u64) + 1) * (n as u64) / w64) as u32
    };
    let mut order: Vec<u32> = shard(k).collect();
    for d in 1..w {
        order.extend(shard((k + d) % w).rev());
    }
    order
}

/// Runs one worker process's share of the sweep: claim cells from the
/// checkpoint directory (own shard first, then steal), execute them on
/// `jobs` threads, and append one checkpoint record per finished cell.
///
/// The worker learns everything from the directory — `grid.spec` is the
/// single source of truth, so a worker can never disagree with its
/// parent about what cell 17 means.
pub fn run_sweep_worker(dir: &Path, worker: u32, workers: u32, jobs: usize) -> Result<(), String> {
    let spec = std::fs::read_to_string(spec_path(dir))
        .map_err(|e| format!("cannot read {}: {e}", spec_path(dir).display()))?;
    let grid = GridSpec::from_canonical(&spec)?;
    let completed = load_completed(dir, &grid, false);
    let n = grid.cell_count();
    let mut writer = CkptWriter::open_append(&segment_path(dir, worker), grid.hash())
        .map_err(|e| format!("cannot open checkpoint segment: {e}"))?;

    let order = claim_order(n, worker, workers.max(1));
    let mut candidates = order.into_iter();
    let claims = claims_dir(dir);
    let params = grid.params;
    let mut failed = 0u32;
    let next = move |_thread: usize| -> Option<(u64, sched::Cell<'_>)> {
        for id in candidates.by_ref() {
            if completed.contains_key(&id) {
                continue;
            }
            // Atomic claim: exactly one process wins the create.
            match std::fs::File::create_new(claims.join(format!("c{id}"))) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(_) => continue,
            }
            let cell = grid.cell(id);
            return Some((
                id as u64,
                sched::Cell::new(
                    format!("sweep.{}", cell.label()),
                    move |_reg: &mut Registry| run_cell_counts(cell, params),
                ),
            ));
        }
        None
    };
    let ran = sched::run_dynamic(next, jobs, None, |done| {
        let counts = done
            .out
            .downcast::<CellCounts>()
            .expect("sweep cells return CellCounts");
        if let Err(e) = writer.append(done.id as u32, worker, &counts.to_payload()) {
            eprintln!("warning: sweep worker {worker}: checkpoint append failed: {e}");
            failed += 1;
        }
        obs::log::debug(
            "harness.sweep",
            "cell checkpointed",
            &[
                ("cell", obs::log::Value::from(done.id)),
                ("worker", obs::log::Value::from(worker as u64)),
                ("thread", obs::log::Value::from(done.worker)),
                (
                    "busy_ms",
                    obs::log::Value::from(done.busy.as_millis() as u64),
                ),
            ],
        );
    });
    eprintln!("sweep worker {worker}: {ran} cells");
    if failed > 0 {
        return Err(format!("{failed} checkpoint appends failed"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Parent orchestration
// ---------------------------------------------------------------------

/// How the parent reaches the `sweep-worker` subcommand of its own binary.
fn self_exe() -> Result<PathBuf, String> {
    std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))
}

/// Runs the whole sweep to completion and returns the full cell → counts
/// map (resumed + computed).
///
/// With `workers <= 1` every remaining cell runs inline on `jobs`
/// threads. Otherwise `workers` child processes are spawned and the
/// parent polls their segments for live progress; any cells left behind
/// by crashed or killed children are computed inline afterwards, so the
/// sweep completes even if every child dies.
pub fn sweep_parent(
    dir: &Path,
    grid: &GridSpec,
    workers: usize,
    jobs: usize,
    live: Option<&SharedRegistry>,
) -> Result<BTreeMap<u32, CellCounts>, String> {
    let n = grid.cell_count();
    let mut completed = load_completed(dir, grid, true);
    let resumed = completed.len();
    if resumed > 0 {
        eprintln!("sweep: resuming — {resumed} of {n} cells already checkpointed");
    }
    publish_progress(live, n, completed.len() as u64, 0);

    if completed.len() < n as usize && workers > 1 {
        run_children(dir, workers, jobs, live, n)?;
        completed = load_completed(dir, grid, true);
    }

    // Inline pass: the whole sweep at --workers 1, or straggler recovery
    // after children exit. Claims are irrelevant here — no other process
    // is alive — so it simply takes every cell still missing.
    if completed.len() < n as usize {
        let missing: Vec<u32> = (0..n).filter(|id| !completed.contains_key(id)).collect();
        if workers > 1 {
            eprintln!(
                "sweep: {} cells left behind by workers; computing inline",
                missing.len()
            );
        }
        let mut writer = CkptWriter::open_append(&segment_path(dir, MAIN_WORKER), grid.hash())
            .map_err(|e| format!("cannot open checkpoint segment: {e}"))?;
        let params = grid.params;
        let mut queue = missing.into_iter();
        let mut done_count = completed.len() as u64;
        let mut append_err = None;
        sched::run_dynamic(
            move |_thread| {
                let id = queue.next()?;
                let cell = grid.cell(id);
                Some((
                    id as u64,
                    sched::Cell::new(
                        format!("sweep.{}", cell.label()),
                        move |_reg: &mut Registry| run_cell_counts(cell, params),
                    ),
                ))
            },
            jobs,
            live,
            |done| {
                let counts = done
                    .out
                    .downcast::<CellCounts>()
                    .expect("sweep cells return CellCounts");
                if let Err(e) = writer.append(done.id as u32, MAIN_WORKER, &counts.to_payload()) {
                    append_err.get_or_insert_with(|| format!("checkpoint append failed: {e}"));
                }
                obs::span::record(
                    format!("cell.sweep.{}", grid.cell(done.id as u32).label()),
                    done.busy,
                );
                completed.insert(done.id as u32, *counts);
                done_count += 1;
                publish_progress(live, n, done_count, 0);
            },
        );
        if let Some(e) = append_err {
            return Err(e);
        }
    }

    if completed.len() != n as usize {
        return Err(format!(
            "sweep incomplete: {} of {n} cells finished",
            completed.len()
        ));
    }
    publish_progress(live, n, n as u64, 0);
    Ok(completed)
}

/// Spawns the child workers and polls their checkpoint segments until
/// every child exits, feeding progress to the live registry and journal.
fn run_children(
    dir: &Path,
    workers: usize,
    jobs: usize,
    live: Option<&SharedRegistry>,
    n: u32,
) -> Result<(), String> {
    let exe = self_exe()?;
    let mut children = Vec::with_capacity(workers);
    for k in 0..workers {
        let child = std::process::Command::new(&exe)
            .arg("sweep-worker")
            .arg("--ckpt")
            .arg(dir)
            .arg("--worker")
            .arg(k.to_string())
            .arg("--workers")
            .arg(workers.to_string())
            .arg("--jobs")
            .arg(jobs.to_string())
            // The pipe is the child's dead-parent detector: the parent
            // never writes, and when it dies (even SIGKILL) the pipe
            // closes and the child's stdin watchdog exits the process —
            // no orphan keeps appending to the segments.
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn sweep worker {k}: {e}"))?;
        children.push((k, child));
        obs::log::info(
            "harness.sweep",
            "sweep worker spawned",
            &[("worker", obs::log::Value::from(k))],
        );
    }

    let mut alive = children.len();
    while alive > 0 {
        std::thread::sleep(POLL_INTERVAL);
        alive = 0;
        for (k, child) in &mut children {
            match child.try_wait() {
                Ok(None) => alive += 1,
                Ok(Some(status)) if status.success() => {}
                Ok(Some(status)) => {
                    eprintln!("warning: sweep worker {k} exited with {status}");
                }
                Err(e) => {
                    eprintln!("warning: sweep worker {k}: {e}");
                }
            }
        }
        let done: u64 = (0..workers)
            .map(|k| count_ckpt_records(&segment_path(dir, k as u32)))
            .sum::<u64>()
            + count_ckpt_records(&segment_path(dir, MAIN_WORKER));
        let claimed = std::fs::read_dir(claims_dir(dir))
            .map(|d| d.flatten().count() as u64)
            .unwrap_or(0);
        publish_progress(live, n, done, claimed.saturating_sub(done));
        if let Some(live) = live {
            live.with(|r| {
                for k in 0..workers {
                    let g = r.gauge(&format!("sweep.worker.{k}.cells"));
                    r.set_gauge(g, count_ckpt_records(&segment_path(dir, k as u32)) as f64);
                }
            });
        }
        if obs::timeline::enabled() {
            obs::timeline::instant("sweep.progress", "sweep");
        }
    }
    for (k, mut child) in children {
        if let Ok(Some(status)) = child.try_wait() {
            obs::log::info(
                "harness.sweep",
                "sweep worker exited",
                &[
                    ("worker", obs::log::Value::from(k)),
                    ("ok", obs::log::Value::from(status.success())),
                ],
            );
        }
    }
    Ok(())
}

/// Live `sweep.cells.{done,claimed,pending}` gauges — the
/// `sweep_cells_total{state=...}` exposition family.
fn publish_progress(live: Option<&SharedRegistry>, n: u32, done: u64, in_flight: u64) {
    let Some(live) = live else { return };
    live.with(|r| {
        let g = r.gauge("sweep.cells.done");
        r.set_gauge(g, done as f64);
        let g = r.gauge("sweep.cells.claimed");
        r.set_gauge(g, in_flight as f64);
        let g = r.gauge("sweep.cells.pending");
        r.set_gauge(g, (n as u64).saturating_sub(done + in_flight) as f64);
    });
}

// ---------------------------------------------------------------------
// Deterministic rendering
// ---------------------------------------------------------------------

/// One configuration's pooled results across its benchmarks.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// (order, depth, threshold, delay).
    pub config: (usize, usize, u8, usize),
    /// Pooled counts (sums; `table_bits` is the max across benchmarks).
    pub pooled: CellCounts,
}

/// Aggregates cells per configuration, in grid nested order.
pub fn aggregate_configs(grid: &GridSpec, completed: &BTreeMap<u32, CellCounts>) -> Vec<ConfigRow> {
    let mut order: Vec<(usize, usize, u8, usize)> = Vec::new();
    let mut pooled: BTreeMap<(usize, usize, u8, usize), CellCounts> = BTreeMap::new();
    for cell in grid.cells() {
        let key = cell.config();
        if !pooled.contains_key(&key) {
            order.push(key);
        }
        if let Some(counts) = completed.get(&cell.id) {
            pooled.entry(key).or_default().add(counts);
        }
    }
    order
        .into_iter()
        .map(|config| ConfigRow {
            config,
            pooled: pooled.get(&config).copied().unwrap_or_default(),
        })
        .collect()
}

/// The Pareto-frontier subset of `configs` for (gated accuracy ↑,
/// coverage ↑, table bits ↓): a config survives unless some other config
/// is at least as good on all three axes and strictly better on one.
/// The frontier is returned cheapest-table-first.
pub fn pareto_frontier(configs: &[ConfigRow]) -> Vec<ConfigRow> {
    let dominates = |a: &ConfigRow, b: &ConfigRow| -> bool {
        let (aa, ac, ab) = (
            a.pooled.gated_accuracy(),
            a.pooled.coverage(),
            a.pooled.table_bits,
        );
        let (ba, bc, bb) = (
            b.pooled.gated_accuracy(),
            b.pooled.coverage(),
            b.pooled.table_bits,
        );
        aa >= ba && ac >= bc && ab <= bb && (aa > ba || ac > bc || ab < bb)
    };
    let mut frontier: Vec<ConfigRow> = configs
        .iter()
        .filter(|c| !configs.iter().any(|o| dominates(o, c)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.pooled
            .table_bits
            .cmp(&b.pooled.table_bits)
            .then(a.config.cmp(&b.config))
    });
    frontier
}

fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

fn config_row_cells(row: &ConfigRow) -> Vec<String> {
    let (order, depth, threshold, delay) = row.config;
    vec![
        order.to_string(),
        if depth == 0 {
            "unbounded".to_string()
        } else {
            depth.to_string()
        },
        threshold.to_string(),
        delay.to_string(),
        pct(row.pooled.accuracy()),
        pct(row.pooled.gated_accuracy()),
        pct(row.pooled.coverage()),
        pct(row.pooled.conflict_rate()),
        (row.pooled.table_bits / 8 / 1024).to_string(),
    ]
}

/// Renders the sweep's deterministic outputs: the stdout text (config
/// table, plus the Pareto table when asked) and the
/// `gdiff-sweep-report/v1` JSON. Also returns the master registry merged
/// from the per-cell counts in grid order.
pub fn render_sweep(
    grid: &GridSpec,
    completed: &BTreeMap<u32, CellCounts>,
    pareto: bool,
    scale: f64,
) -> (String, JsonValue) {
    // Registry::merge in cell order is the metrics anchor: the same map
    // always merges to the same registry, whatever computed it.
    let mut master = Registry::new();
    for (_, counts) in completed.iter() {
        let mut reg = Registry::new();
        counts.publish(&mut reg);
        master.merge(&reg);
    }

    let configs = aggregate_configs(grid, completed);
    let headers = [
        "order", "depth", "thresh", "delayT", "acc%", "gated%", "cov%", "conf%", "tableKB",
    ];
    let mut text = String::new();
    let mut t = Table::new(
        format!(
            "Sweep: {} cells ({} configs x {} benchmarks, {}+{} insts/cell)",
            grid.cell_count(),
            configs.len(),
            grid.benches.len(),
            grid.params.warmup,
            grid.params.measure,
        ),
        &headers,
    );
    for row in &configs {
        t.row(config_row_cells(row));
    }
    text.push_str(&t.render());

    let frontier = pareto_frontier(&configs);
    if pareto {
        let mut t = Table::new(
            format!(
                "Pareto frontier: {} of {} configs (gated accuracy x coverage vs table bits)",
                frontier.len(),
                configs.len()
            ),
            &headers,
        );
        for row in &frontier {
            t.row(config_row_cells(row));
        }
        text.push_str(&t.render());
    }

    let config_json = |row: &ConfigRow| {
        let (order, depth, threshold, delay) = row.config;
        JsonValue::object()
            .with("order", order as u64)
            .with("depth", depth as u64)
            .with("threshold", threshold as u64)
            .with("delay", delay as u64)
            .with("total", row.pooled.total)
            .with("confident", row.pooled.confident)
            .with("confident_correct", row.pooled.confident_correct)
            .with("accuracy", row.pooled.accuracy())
            .with("gated_accuracy", row.pooled.gated_accuracy())
            .with("coverage", row.pooled.coverage())
            .with("conflict_rate", row.pooled.conflict_rate())
            .with("table_bits", row.pooled.table_bits)
    };
    let cells_json: Vec<JsonValue> = grid
        .cells()
        .map(|cell| {
            let counts = completed.get(&cell.id).copied().unwrap_or_default();
            JsonValue::object()
                .with("id", cell.id as u64)
                .with("label", cell.label())
                .with("total", counts.total)
                .with("predicted", counts.predicted)
                .with("correct", counts.correct)
                .with("confident", counts.confident)
                .with("confident_correct", counts.confident_correct)
                .with("table_accesses", counts.table_accesses)
                .with("table_conflicts", counts.table_conflicts)
                .with("table_bits", counts.table_bits)
        })
        .collect();

    let mut report = JsonValue::object()
        .with("schema", SWEEP_SCHEMA)
        .with("seed", grid.params.seed)
        .with("scale", scale)
        .with(
            "grid",
            JsonValue::object()
                .with("hash", grid.hash() as u64)
                .with("cells", grid.cell_count() as u64)
                .with("spec", grid.canonical()),
        )
        .with("cells", JsonValue::Arr(cells_json))
        .with(
            "configs",
            JsonValue::Arr(configs.iter().map(config_json).collect()),
        );
    if pareto {
        report = report.with(
            "pareto",
            JsonValue::Arr(frontier.iter().map(config_json).collect()),
        );
    }
    report = report.with("metrics", master.to_json());
    (text, report)
}

/// Renders the `--dry-run` expansion summary (no checkpoint I/O at all).
pub fn render_dry_run(grid: &GridSpec) -> String {
    let (per_cell, table_bytes) = grid.footprint();
    let n = grid.cell_count() as u64;
    format!(
        "sweep dry run: {n} cells\n\
         \x20 axes: order x{} | depth x{} | threshold x{} | delay x{} | bench x{}\n\
         \x20 per cell: {per_cell} producers ({} warmup + {} measured)\n\
         \x20 total: {} simulated producers\n\
         \x20 largest table: ~{} KiB per in-flight cell\n\
         \x20 grid hash: {:#010x}\n",
        grid.orders.len(),
        grid.depths.len(),
        grid.thresholds.len(),
        grid.delays.len(),
        grid.benches.len(),
        grid.params.warmup,
        grid.params.measure,
        n * per_cell,
        table_bytes / 1024,
        grid.hash(),
    )
}

/// The child-side dead-parent watchdog: blocks a thread on stdin and
/// exits the whole process at EOF. The parent holds the write end and
/// never writes, so EOF means the parent is gone — however it died.
pub fn spawn_orphan_watchdog() {
    std::thread::spawn(|| {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        eprintln!("sweep worker: parent gone; exiting");
        std::process::exit(3);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips() {
        let counts = CellCounts {
            total: 40_000,
            predicted: 31_234,
            correct: 28_111,
            confident: 25_000,
            confident_correct: 24_500,
            table_accesses: 45_000,
            table_conflicts: 123,
            table_bits: 8 * 1024 * 80,
        };
        let payload = counts.to_payload();
        assert_eq!(CellCounts::from_payload(&payload).unwrap(), counts);
        // Bit-for-bit stable serialization: resume depends on it.
        assert_eq!(
            payload,
            CellCounts::from_payload(&payload).unwrap().to_payload()
        );
        assert!(CellCounts::from_payload(b"{}").is_err());
        assert!(CellCounts::from_payload(b"\xff\xfe").is_err());
    }

    #[test]
    fn claim_order_covers_every_cell_and_steals_from_tails() {
        let n = 103u32;
        let w = 4u32;
        for k in 0..w {
            let order = claim_order(n, k, w);
            assert_eq!(order.len(), n as usize, "worker {k} sees every cell");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n as usize, "no duplicates for worker {k}");
            // Own shard comes first, ascending.
            let own_start = (k as u64 * n as u64 / w as u64) as u32;
            let own_end = ((k as u64 + 1) * n as u64 / w as u64) as u32;
            let own_len = (own_end - own_start) as usize;
            assert!(order[..own_len].windows(2).all(|p| p[0] < p[1]));
            assert_eq!(order[0], own_start);
            // The first stolen cell is the *last* cell of the next shard.
            let next_end = ((k as u64 + 2) * n as u64 / w as u64).min(n as u64) as u32;
            let expect = if k == w - 1 {
                (n as u64 / w as u64) as u32 - 1
            } else {
                next_end - 1
            };
            assert_eq!(order[own_len], expect, "worker {k} steals tail-first");
        }
    }

    #[test]
    fn pareto_keeps_only_non_dominated_configs() {
        let mk = |acc: u64, cov: u64, bits: u64| ConfigRow {
            config: (8, bits as usize, 4, 0),
            pooled: CellCounts {
                total: 100,
                predicted: 100,
                correct: acc,
                confident: cov,
                confident_correct: acc.min(cov),
                table_accesses: 100,
                table_conflicts: 0,
                table_bits: bits,
            },
        };
        // (gated_acc, coverage, bits): b dominates c; a and b trade off.
        let a = mk(90, 50, 1_000);
        let b = mk(80, 80, 2_000);
        let c = mk(70, 70, 4_000);
        let frontier = pareto_frontier(&[a.clone(), b.clone(), c]);
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[0].pooled.table_bits, 1_000);
        assert_eq!(frontier[1].pooled.table_bits, 2_000);
    }

    #[test]
    fn render_is_a_pure_function_of_the_counts_map() {
        let grid = GridSpec::parse(
            "order=2,4;bench=gcc,mcf;measure=1000;warmup=0",
            RunParams::tiny(),
        )
        .unwrap();
        let mut completed = BTreeMap::new();
        for cell in grid.cells() {
            completed.insert(
                cell.id,
                CellCounts {
                    total: 1000,
                    predicted: 700 + cell.id as u64,
                    correct: 600,
                    confident: 500,
                    confident_correct: 480,
                    table_accesses: 1000,
                    table_conflicts: 3,
                    table_bits: 1024 * (cell.order as u64),
                },
            );
        }
        let (text1, json1) = render_sweep(&grid, &completed, true, 1.0);
        let (text2, json2) = render_sweep(&grid, &completed, true, 1.0);
        assert_eq!(text1, text2);
        assert_eq!(json1.to_json_pretty(), json2.to_json_pretty());
        assert!(text1.contains("Pareto frontier"));
        let metrics = json1.get("metrics").expect("metrics section");
        assert_eq!(
            metrics
                .get("counters")
                .and_then(|c| c.get("sweep.cells"))
                .and_then(JsonValue::as_f64),
            Some(4.0)
        );
        // `.max` gauges max-merge: the largest table wins.
        assert_eq!(
            metrics
                .get("gauges")
                .and_then(|g| g.get("sweep.table_bits.max"))
                .and_then(JsonValue::as_f64),
            Some(4096.0)
        );
    }
}
