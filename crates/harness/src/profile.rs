//! Profile-mode experiments (§3): Figures 1, 8, 9, 10 and the queue-order
//! ablation.
//!
//! Profile mode follows the paper's §3 methodology: every value-producing
//! instruction is predicted and the predictor is updated immediately in
//! program order — no pipeline, no confidence gating; the metric is plain
//! accuracy over all value producers.

use gdiff::GDiffPredictor;
use obs::Registry;
use predictors::{
    Capacity, ConfidenceTable, DfcmPredictor, PredictorStats, StridePredictor, ValuePredictor,
};
use workloads::{Benchmark, DynInst, SyntheticSource, TraceSource};

use crate::RunParams;

/// Runs one predictor over one benchmark's value stream (profile mode) and
/// returns ungated accuracy statistics.
pub fn run_profile<P: ValuePredictor>(
    bench: Benchmark,
    predictor: &mut P,
    params: RunParams,
) -> PredictorStats {
    run_profile_on(&SyntheticSource::new(params.seed), bench, predictor, params)
}

/// [`run_profile`] with an explicit instruction origin: the synthetic
/// models or a recorded trace file.
pub fn run_profile_on<P: ValuePredictor>(
    source: &dyn TraceSource,
    bench: Benchmark,
    predictor: &mut P,
    params: RunParams,
) -> PredictorStats {
    let _span = obs::span::span("profile.run");
    let mut stats = PredictorStats::new();
    for (n, inst) in value_stream_on(source, bench, params).enumerate() {
        let predicted = predictor.predict(inst.pc);
        if (n as u64) >= params.warmup {
            stats.record(predicted, false, inst.value);
        }
        predictor.update(inst.pc, inst.value);
    }
    stats
}

/// [`run_profile_on`] with confidence gating: the sweep engine's cell
/// body. The predictor is queried every producer; when a confidence
/// table is supplied, a prediction only counts as *used* (confident)
/// when the saturating counter clears its threshold, and the counter
/// trains on every resolved prediction. With `conf = None` the run is
/// ungated and "confident" means "the predictor ventured a prediction",
/// so coverage stays meaningful across both modes.
pub fn run_profile_gated(
    source: &dyn TraceSource,
    bench: Benchmark,
    predictor: &mut GDiffPredictor,
    mut conf: Option<&mut ConfidenceTable>,
    params: RunParams,
) -> PredictorStats {
    let _span = obs::span::span("profile.run");
    let mut stats = PredictorStats::new();
    for (n, inst) in value_stream_on(source, bench, params).enumerate() {
        let predicted = predictor.predict(inst.pc);
        let confident = match (&predicted, conf.as_deref_mut()) {
            (Some(_), Some(c)) => c.is_confident(inst.pc),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if (n as u64) >= params.warmup {
            stats.record(predicted, confident, inst.value);
        }
        if let (Some(p), Some(c)) = (predicted, conf.as_deref_mut()) {
            c.train(inst.pc, p == inst.value);
        }
        predictor.update(inst.pc, inst.value);
    }
    stats
}

/// Value producers a profile-mode experiment consumes: the number of
/// instructions [`value_stream_on`] takes after filtering. Recording
/// tools use this to size captured traces.
pub fn profile_producers(params: RunParams) -> usize {
    (params.warmup + params.measure) as usize
}

fn value_stream_on<'a>(
    source: &'a dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
) -> impl Iterator<Item = DynInst> + 'a {
    source
        .stream(bench)
        .filter(|i| i.produces_value())
        .take(profile_producers(params))
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Figure 1: a hard-to-predict local value sequence, with the local
/// predictors' accuracy on it.
///
/// The paper shows a parser load whose values look like noise within a
/// slowly narrowing range (stride accuracy 4%, DFCM accuracy 2%). We
/// reproduce it from the parser model's `NoisyRange` spill/fill reload.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The first values of the sequence (the paper plots ~250 of them).
    pub sequence: Vec<u64>,
    /// Local stride accuracy on the full measured sequence.
    pub stride_accuracy: f64,
    /// Local DFCM accuracy on the full measured sequence.
    pub dfcm_accuracy: f64,
    /// gDiff (order 8) accuracy on the same instruction, for contrast.
    pub gdiff_accuracy: f64,
}

/// Regenerates Figure 1 from the parser model.
pub fn fig1(params: RunParams) -> Fig1 {
    fig1_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig1`] against an explicit instruction origin.
pub fn fig1_on(source: &dyn TraceSource, params: RunParams) -> Fig1 {
    let _span = obs::span::span("profile.run");
    // The reload of the parser model's first correlation kernel.
    let probe = workloads::kernels::CorrelationKernel::new(
        workloads::kernels::KernelSlot::for_site(0),
        3,
        &[4, 24],
        workloads::kernels::HardKind::NoisyRange,
        workloads::kernels::FillerKind::Strided,
    );
    let target_pc = probe.fill_pc();

    let mut stride = StridePredictor::new(Capacity::Unbounded);
    let mut dfcm = DfcmPredictor::new(Capacity::Unbounded, 4, 16);
    let mut gd = GDiffPredictor::new(Capacity::Unbounded, 8);
    let mut sequence = Vec::new();
    let (mut s_ok, mut d_ok, mut g_ok, mut total) = (0u64, 0u64, 0u64, 0u64);
    for inst in value_stream_on(source, Benchmark::Parser, params) {
        if inst.pc == target_pc {
            if sequence.len() < 250 {
                sequence.push(inst.value);
            }
            total += 1;
            if stride.predict(inst.pc) == Some(inst.value) {
                s_ok += 1;
            }
            if dfcm.predict(inst.pc) == Some(inst.value) {
                d_ok += 1;
            }
            if gd.predict(inst.pc) == Some(inst.value) {
                g_ok += 1;
            }
        }
        // Local predictors only train on their own instruction; feeding
        // the whole stream is harmless (PC-indexed) and keeps the code
        // uniform. gDiff must see the whole stream.
        stride.update(inst.pc, inst.value);
        dfcm.update(inst.pc, inst.value);
        gd.update(inst.pc, inst.value);
    }
    let total = total.max(1) as f64;
    Fig1 {
        sequence,
        stride_accuracy: s_ok as f64 / total,
        dfcm_accuracy: d_ok as f64 / total,
        gdiff_accuracy: g_ok as f64 / total,
    }
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// One benchmark's row of Figure 8 (plus the paper's §3 note about queue
/// size 32 on gap).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark.
    pub bench: Benchmark,
    /// Local stride accuracy (unlimited table).
    pub stride: f64,
    /// Local DFCM accuracy (unlimited L1, 64K L2).
    pub dfcm: f64,
    /// gDiff accuracy, queue order 8, unlimited table.
    pub gdiff_q8: f64,
    /// gDiff accuracy, queue order 32 (the paper quotes gap: 59.7%).
    pub gdiff_q32: f64,
}

/// Regenerates Figure 8: profile accuracy of the local predictors and
/// gDiff over all value-producing instructions.
pub fn fig8(params: RunParams) -> Vec<Fig8Row> {
    fig8_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig8`] against an explicit instruction origin.
pub fn fig8_on(source: &dyn TraceSource, params: RunParams) -> Vec<Fig8Row> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| fig8_bench(source, bench, params))
        .collect()
}

/// One benchmark's Figure 8 row — the independently schedulable cell.
pub fn fig8_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> Fig8Row {
    let stride = run_profile_on(
        source,
        bench,
        &mut StridePredictor::new(Capacity::Unbounded),
        params,
    );
    let dfcm = run_profile_on(
        source,
        bench,
        &mut DfcmPredictor::new(Capacity::Unbounded, 4, 16),
        params,
    );
    let g8 = run_profile_on(
        source,
        bench,
        &mut GDiffPredictor::new(Capacity::Unbounded, 8),
        params,
    );
    let g32 = run_profile_on(
        source,
        bench,
        &mut GDiffPredictor::new(Capacity::Unbounded, 32),
        params,
    );
    Fig8Row {
        bench,
        stride: stride.accuracy(),
        dfcm: dfcm.accuracy(),
        gdiff_q8: g8.accuracy(),
        gdiff_q32: g32.accuracy(),
    }
}

// ---------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------

/// Conflict (aliasing) rates of the gDiff prediction table per size, one
/// row per benchmark.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark.
    pub bench: Benchmark,
    /// Conflict rate per table size, in the same order as
    /// [`fig9_sizes`]: unlimited first, then 64K down to 2K.
    pub conflict_rates: Vec<f64>,
    /// Accuracy with the unlimited table and with the 8K table — the
    /// paper's "less than 1%" degradation check.
    pub accuracy_unlimited: f64,
    /// Accuracy with the 8K-entry table.
    pub accuracy_8k: f64,
    /// Direct-mapped probe length of the 8K table (slot count).
    pub table_probe_len: usize,
    /// Occupied slots in the 8K table after the run.
    pub table_occupancy: usize,
    /// Byte footprint of the 8K table's storage arrays.
    pub table_bytes: u64,
}

/// The table sizes of Figure 9 (entries; `None` = unlimited).
pub fn fig9_sizes() -> Vec<Option<usize>> {
    vec![
        None,
        Some(64 * 1024),
        Some(32 * 1024),
        Some(16 * 1024),
        Some(8 * 1024),
        Some(4 * 1024),
        Some(2 * 1024),
    ]
}

/// Regenerates Figure 9: the aliasing effect of bounding the gDiff table.
pub fn fig9(params: RunParams) -> Vec<Fig9Row> {
    fig9_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig9`] against an explicit instruction origin.
pub fn fig9_on(source: &dyn TraceSource, params: RunParams) -> Vec<Fig9Row> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| fig9_bench(source, bench, params))
        .collect()
}

/// One benchmark's Figure 9 row — the independently schedulable cell.
///
/// Convenience wrapper over [`fig9_bench_obs`] that discards the gauge
/// output.
pub fn fig9_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> Fig9Row {
    fig9_bench_obs(source, bench, params, &mut Registry::new())
}

/// [`fig9_bench`] with observability: publishes the 8K table's shape as
/// `gdiff.table.{probe_len,occupancy,bytes}` gauges on `reg` and records
/// the same geometry in the returned row.
pub fn fig9_bench_obs(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
    reg: &mut Registry,
) -> Fig9Row {
    let mut conflict_rates = Vec::new();
    let mut accuracy_unlimited = 0.0;
    let mut accuracy_8k = 0.0;
    let mut geometry = None;
    for size in fig9_sizes() {
        let cap = match size {
            None => Capacity::Unbounded,
            Some(n) => Capacity::Entries(n),
        };
        let mut p = GDiffPredictor::new(cap, 8);
        let stats = run_profile_on(source, bench, &mut p, params);
        conflict_rates.push(p.conflict_rate());
        if size.is_none() {
            accuracy_unlimited = stats.accuracy();
        } else if size == Some(8 * 1024) {
            accuracy_8k = stats.accuracy();
            geometry = Some(p.core().geometry());
        }
    }
    let geometry = geometry.expect("fig9_sizes includes the 8K point");
    let probe_len = reg.gauge("gdiff.table.probe_len");
    reg.set_gauge(probe_len, geometry.probe_len as f64);
    let occupancy = reg.gauge("gdiff.table.occupancy");
    reg.set_gauge(occupancy, geometry.occupied as f64);
    let bytes = reg.gauge("gdiff.table.bytes");
    reg.set_gauge(bytes, geometry.bytes as f64);
    Fig9Row {
        bench,
        conflict_rates,
        accuracy_unlimited,
        accuracy_8k,
        table_probe_len: geometry.probe_len,
        table_occupancy: geometry.occupied,
        table_bytes: geometry.bytes,
    }
}

// ---------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------

/// gDiff accuracy per value delay, one row per benchmark.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark.
    pub bench: Benchmark,
    /// Accuracy for each delay in [`fig10_delays`].
    pub accuracy: Vec<f64>,
}

/// The delays of Figure 10.
pub fn fig10_delays() -> Vec<usize> {
    vec![0, 2, 4, 8, 16]
}

/// Regenerates Figure 10: gDiff (q=8) accuracy under value delay T.
pub fn fig10(params: RunParams) -> Vec<Fig10Row> {
    fig10_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig10`] against an explicit instruction origin.
pub fn fig10_on(source: &dyn TraceSource, params: RunParams) -> Vec<Fig10Row> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| fig10_bench(source, bench, params))
        .collect()
}

/// One benchmark's Figure 10 row — the independently schedulable cell.
pub fn fig10_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> Fig10Row {
    let accuracy = fig10_delays()
        .into_iter()
        .map(|t| {
            let mut p = GDiffPredictor::with_delay(Capacity::Unbounded, 8, t);
            run_profile_on(source, bench, &mut p, params).accuracy()
        })
        .collect();
    Fig10Row { bench, accuracy }
}

// ---------------------------------------------------------------------
// Queue-order ablation
// ---------------------------------------------------------------------

/// gDiff profile accuracy per queue order.
#[derive(Debug, Clone)]
pub struct QueueRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Accuracy per order in [`ablate_queue_orders`].
    pub accuracy: Vec<f64>,
}

/// The queue orders swept by [`ablate_queue`].
pub fn ablate_queue_orders() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}

/// Queue-order ablation: how far correlations reach per benchmark (§3's
/// gap discussion generalized).
pub fn ablate_queue(params: RunParams) -> Vec<QueueRow> {
    ablate_queue_on(&SyntheticSource::new(params.seed), params)
}

/// [`ablate_queue`] against an explicit instruction origin.
pub fn ablate_queue_on(source: &dyn TraceSource, params: RunParams) -> Vec<QueueRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| ablate_queue_bench(source, bench, params))
        .collect()
}

/// One benchmark's queue-order ablation row — the independently
/// schedulable cell.
pub fn ablate_queue_bench(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
) -> QueueRow {
    let accuracy = ablate_queue_orders()
        .into_iter()
        .map(|n| {
            let mut p = GDiffPredictor::new(Capacity::Unbounded, n);
            run_profile_on(source, bench, &mut p, params).accuracy()
        })
        .collect();
    QueueRow { bench, accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg(xs: impl IntoIterator<Item = f64>) -> f64 {
        let v: Vec<f64> = xs.into_iter().collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn fig8_preserves_paper_ordering() {
        let rows = fig8(RunParams::tiny());
        let stride = avg(rows.iter().map(|r| r.stride));
        let dfcm = avg(rows.iter().map(|r| r.dfcm));
        let gdiff = avg(rows.iter().map(|r| r.gdiff_q8));
        // The paper's Figure 8 shape: gDiff > DFCM > stride on average.
        assert!(gdiff > dfcm, "gdiff {gdiff} vs dfcm {dfcm}");
        assert!(dfcm > stride, "dfcm {dfcm} vs stride {stride}");
        // gDiff beats local stride on every benchmark ("consistently").
        for r in &rows {
            assert!(
                r.gdiff_q8 > r.stride - 0.02,
                "{}: {} vs {}",
                r.bench,
                r.gdiff_q8,
                r.stride
            );
        }
    }

    #[test]
    fn fig8_gap_recovers_with_q32() {
        let rows = fig8(RunParams::tiny());
        let gap = rows.iter().find(|r| r.bench == Benchmark::Gap).unwrap();
        assert!(
            gap.gdiff_q32 > gap.gdiff_q8 + 0.10,
            "gap must jump with order 32: q8={} q32={}",
            gap.gdiff_q8,
            gap.gdiff_q32
        );
        // gap sits at (or within noise of) the bottom for gDiff(q8).
        let min = rows.iter().map(|r| r.gdiff_q8).fold(f64::MAX, f64::min);
        assert!(
            gap.gdiff_q8 - min < 0.06,
            "gap near the minimum: {} vs {min}",
            gap.gdiff_q8
        );
    }

    #[test]
    fn fig9_conflicts_shrink_with_table_size() {
        let params = RunParams::tiny();
        let rows = fig9(params);
        for r in &rows {
            assert_eq!(r.conflict_rates[0], 0.0, "unlimited never conflicts");
            // 64K vs 2K: monotone within noise.
            assert!(
                r.conflict_rates[1] <= r.conflict_rates[6] + 1e-9,
                "{}: {:?}",
                r.bench,
                r.conflict_rates
            );
            assert!(
                r.accuracy_unlimited - r.accuracy_8k < 0.05,
                "{}: 8K table must be close to unlimited",
                r.bench
            );
        }
    }

    #[test]
    fn fig10_accuracy_degrades_with_delay() {
        let rows = fig10(RunParams::tiny());
        let t0 = avg(rows.iter().map(|r| r.accuracy[0]));
        let t16 = avg(rows.iter().map(|r| r.accuracy[4]));
        assert!(t0 > t16 + 0.1, "delay must hurt: T0 {t0} vs T16 {t16}");
    }

    #[test]
    fn fig1_sequence_is_noisy_and_locally_hard() {
        let f = fig1(RunParams::tiny());
        assert!(f.sequence.len() > 50);
        assert!(f.stride_accuracy < 0.15, "stride {}", f.stride_accuracy);
        assert!(f.dfcm_accuracy < 0.30, "dfcm {}", f.dfcm_accuracy);
        assert!(f.gdiff_accuracy > 0.8, "gdiff {}", f.gdiff_accuracy);
    }
}
