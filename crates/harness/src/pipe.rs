//! Pipeline experiments (§4, §5, §7): Figures 12, 13, 16, 19, Table 2 and
//! the pipeline-side ablations.

use gdiff::HgvqPredictor;
use pipeline::{
    GDiffPrefetcher, HgvqEngine, LocalEngine, NextLinePrefetcher, NoVp, OracleEngine,
    PipelineConfig, Prefetcher, SgvqEngine, SimStats, Simulator, StridePrefetcher, VpEngine,
};
use predictors::{Capacity, ConfidenceConfig, LastValuePredictor, StridePredictor};
use workloads::{Benchmark, SyntheticSource, TraceSource};

use crate::RunParams;

/// The raw-instruction prefix a pipeline experiment consumes: warmup +
/// measure + settle margin, doubled so the window never drains early.
/// Recording tools use this to size captured traces.
pub fn pipeline_trace_len(params: RunParams) -> usize {
    (params.warmup + params.measure + 50_000) as usize * 2
}

/// Runs one benchmark through the Table 1 pipeline with `engine`.
pub fn run_pipeline(bench: Benchmark, engine: Box<dyn VpEngine>, params: RunParams) -> SimStats {
    run_pipeline_configured(bench, engine, None, PipelineConfig::r10k(), params)
}

/// [`run_pipeline`] with an explicit instruction origin: the synthetic
/// models or a recorded trace file.
pub fn run_pipeline_on(
    source: &dyn TraceSource,
    bench: Benchmark,
    engine: Box<dyn VpEngine>,
    params: RunParams,
) -> SimStats {
    run_pipeline_configured_on(source, bench, engine, None, PipelineConfig::r10k(), params)
}

/// [`run_pipeline_on`] additionally collecting the prediction-provenance
/// aggregate over the measurement phase (`harness explain`).
pub fn run_pipeline_with_provenance(
    source: &dyn TraceSource,
    bench: Benchmark,
    engine: Box<dyn VpEngine>,
    params: RunParams,
) -> (SimStats, obs::Provenance) {
    let _span = obs::span::span("pipeline.run");
    let trace = source.stream(bench).take(pipeline_trace_len(params));
    Simulator::new(PipelineConfig::r10k(), engine).run_with_provenance(
        trace,
        params.warmup,
        params.measure,
    )
}

/// Full-control pipeline run: custom machine configuration and optional
/// prefetcher.
pub fn run_pipeline_configured(
    bench: Benchmark,
    engine: Box<dyn VpEngine>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    config: PipelineConfig,
    params: RunParams,
) -> SimStats {
    run_pipeline_configured_on(
        &SyntheticSource::new(params.seed),
        bench,
        engine,
        prefetcher,
        config,
        params,
    )
}

/// [`run_pipeline_configured`] with an explicit instruction origin.
pub fn run_pipeline_configured_on(
    source: &dyn TraceSource,
    bench: Benchmark,
    engine: Box<dyn VpEngine>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    config: PipelineConfig,
    params: RunParams,
) -> SimStats {
    let _span = obs::span::span("pipeline.run");
    let trace = source.stream(bench).take(pipeline_trace_len(params));
    let mut sim = Simulator::new(config, engine);
    if let Some(p) = prefetcher {
        sim = sim.with_prefetcher(p);
    }
    sim.run(trace, params.warmup, params.measure)
}

// ---------------------------------------------------------------------
// Figure 12
// ---------------------------------------------------------------------

/// The value-delay distribution of one pipeline run.
#[derive(Debug, Clone)]
pub struct DelayDistribution {
    /// Benchmark measured (the paper uses vortex).
    pub bench: Benchmark,
    /// Fraction of value-producing instructions per delay `0..=20`.
    pub fractions: Vec<f64>,
    /// Mean delay (the paper reports roughly 5).
    pub mean: f64,
    /// The full simulation statistics behind the distribution (cycles,
    /// IPC, predictor stats, delay percentiles) for run reports.
    pub stats: SimStats,
}

impl DelayDistribution {
    /// The distribution plus the underlying [`SimStats`] as JSON.
    pub fn to_json(&self) -> obs::JsonValue {
        self.stats
            .to_json()
            .with("bench", self.bench.to_string())
            .with("fractions", self.fractions.clone())
            .with("mean_delay", self.mean)
    }
}

/// Regenerates Figure 12: the distribution of value delays (values
/// produced between dispatch and write-back) in the OOO pipeline.
pub fn fig12(params: RunParams) -> DelayDistribution {
    fig12_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig12`] against an explicit instruction origin.
pub fn fig12_on(source: &dyn TraceSource, params: RunParams) -> DelayDistribution {
    let bench = Benchmark::Vortex;
    let stats = run_pipeline_on(source, bench, Box::new(NoVp), params);
    DelayDistribution {
        bench,
        fractions: (0..=20).map(|d| stats.delays.fraction(d)).collect(),
        mean: stats.delays.mean(),
        stats,
    }
}

// ---------------------------------------------------------------------
// Figures 13 and 16
// ---------------------------------------------------------------------

/// Accuracy/coverage of the predictors compared in Figures 13 and 16.
#[derive(Debug, Clone)]
pub struct PipelineVpRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// gDiff gated accuracy (SGVQ for fig13, HGVQ for fig16).
    pub gdiff_accuracy: f64,
    /// gDiff coverage.
    pub gdiff_coverage: f64,
    /// Local stride gated accuracy.
    pub stride_accuracy: f64,
    /// Local stride coverage.
    pub stride_coverage: f64,
    /// Local context (DFCM) gated accuracy (fig16 only; 0 in fig13).
    pub context_accuracy: f64,
    /// Local context coverage.
    pub context_coverage: f64,
}

fn vp_comparison(
    source: &dyn TraceSource,
    params: RunParams,
    gdiff: fn() -> Box<dyn VpEngine>,
    with_context: bool,
) -> Vec<PipelineVpRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| vp_comparison_bench(source, bench, params, gdiff, with_context))
        .collect()
}

fn vp_comparison_bench(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
    gdiff: fn() -> Box<dyn VpEngine>,
    with_context: bool,
) -> PipelineVpRow {
    let g = run_pipeline_on(source, bench, gdiff(), params);
    let s = run_pipeline_on(source, bench, Box::new(LocalEngine::stride_8k()), params);
    let (ca, cc) = if with_context {
        let c = run_pipeline_on(source, bench, Box::new(LocalEngine::dfcm_8k()), params);
        (c.vp.gated_accuracy(), c.vp.coverage())
    } else {
        (0.0, 0.0)
    };
    PipelineVpRow {
        bench,
        gdiff_accuracy: g.vp.gated_accuracy(),
        gdiff_coverage: g.vp.coverage(),
        stride_accuracy: s.vp.gated_accuracy(),
        stride_coverage: s.vp.coverage(),
        context_accuracy: ca,
        context_coverage: cc,
    }
}

/// One benchmark's Figure 13 row — the independently schedulable cell.
pub fn fig13_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> PipelineVpRow {
    vp_comparison_bench(
        source,
        bench,
        params,
        || Box::new(SgvqEngine::paper_default()),
        false,
    )
}

/// One benchmark's Figure 16 row — the independently schedulable cell.
pub fn fig16_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> PipelineVpRow {
    vp_comparison_bench(
        source,
        bench,
        params,
        || Box::new(HgvqEngine::paper_default()),
        true,
    )
}

/// Regenerates Figure 13: gDiff with the *speculative* GVQ (order 32)
/// vs the local stride predictor, in the pipeline, 3-bit confidence.
pub fn fig13(params: RunParams) -> Vec<PipelineVpRow> {
    fig13_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig13`] against an explicit instruction origin.
pub fn fig13_on(source: &dyn TraceSource, params: RunParams) -> Vec<PipelineVpRow> {
    vp_comparison(
        source,
        params,
        || Box::new(SgvqEngine::paper_default()),
        false,
    )
}

/// Regenerates Figure 16: gDiff with the *hybrid* GVQ (order 32) vs local
/// stride vs local context.
pub fn fig16(params: RunParams) -> Vec<PipelineVpRow> {
    fig16_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig16`] against an explicit instruction origin.
pub fn fig16_on(source: &dyn TraceSource, params: RunParams) -> Vec<PipelineVpRow> {
    vp_comparison(
        source,
        params,
        || Box::new(HgvqEngine::paper_default()),
        true,
    )
}

// ---------------------------------------------------------------------
// Table 2 and Figure 19
// ---------------------------------------------------------------------

/// Baseline IPC (no value speculation) — Table 2.
pub fn table2(params: RunParams) -> Vec<(Benchmark, f64)> {
    table2_on(&SyntheticSource::new(params.seed), params)
}

/// [`table2`] against an explicit instruction origin.
pub fn table2_on(source: &dyn TraceSource, params: RunParams) -> Vec<(Benchmark, f64)> {
    Benchmark::ALL
        .into_iter()
        .map(|b| table2_bench(source, b, params))
        .collect()
}

/// One benchmark's baseline IPC — the independently schedulable cell.
pub fn table2_bench(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
) -> (Benchmark, f64) {
    (
        bench,
        run_pipeline_on(source, bench, Box::new(NoVp), params).ipc(),
    )
}

/// Speedups of value speculation over the baseline — Figure 19.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Baseline IPC (Table 2).
    pub baseline_ipc: f64,
    /// Speedup of local stride value speculation (1.0 = no change).
    pub local_stride: f64,
    /// Speedup of local context (DFCM) value speculation.
    pub local_context: f64,
    /// Speedup of gDiff (HGVQ) value speculation.
    pub gdiff: f64,
}

/// Regenerates Figure 19: per-benchmark speedups and their harmonic mean.
pub fn fig19(params: RunParams) -> Vec<SpeedupRow> {
    fig19_on(&SyntheticSource::new(params.seed), params)
}

/// [`fig19`] against an explicit instruction origin.
pub fn fig19_on(source: &dyn TraceSource, params: RunParams) -> Vec<SpeedupRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| fig19_bench(source, bench, params))
        .collect()
}

/// One benchmark's Figure 19 row — the independently schedulable cell.
pub fn fig19_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> SpeedupRow {
    let base = run_pipeline_on(source, bench, Box::new(NoVp), params).ipc();
    let st = run_pipeline_on(source, bench, Box::new(LocalEngine::stride_8k()), params).ipc();
    let cx = run_pipeline_on(source, bench, Box::new(LocalEngine::dfcm_8k()), params).ipc();
    let gd = run_pipeline_on(source, bench, Box::new(HgvqEngine::paper_default()), params).ipc();
    SpeedupRow {
        bench,
        baseline_ipc: base,
        local_stride: st / base,
        local_context: cx / base,
        gdiff: gd / base,
    }
}

/// Harmonic mean of a set of speedup ratios.
pub fn harmonic_mean(ratios: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = ratios.into_iter().collect();
    v.len() as f64 / v.iter().map(|r| 1.0 / r).sum::<f64>()
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// HGVQ filler ablation: what fills the queue at dispatch matters.
#[derive(Debug, Clone)]
pub struct FillerRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// (accuracy, coverage) with the paper's local-stride filler.
    pub stride_filler: (f64, f64),
    /// (accuracy, coverage) with a last-value filler.
    pub last_value_filler: (f64, f64),
    /// (accuracy, coverage) with no filler at all (SGVQ).
    pub no_filler: (f64, f64),
}

/// Ablates the HGVQ filler: paper's stride filler vs a last-value filler
/// vs none (which degenerates to the SGVQ design).
pub fn ablate_filler(params: RunParams) -> Vec<FillerRow> {
    ablate_filler_on(&SyntheticSource::new(params.seed), params)
}

/// [`ablate_filler`] against an explicit instruction origin.
pub fn ablate_filler_on(source: &dyn TraceSource, params: RunParams) -> Vec<FillerRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| ablate_filler_bench(source, bench, params))
        .collect()
}

/// One benchmark's filler-ablation row — the independently schedulable
/// cell.
pub fn ablate_filler_bench(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
) -> FillerRow {
    let stride = run_pipeline_on(source, bench, Box::new(HgvqEngine::paper_default()), params);
    let lv: HgvqPredictor<LastValuePredictor> = HgvqPredictor::new(
        Capacity::Entries(8192),
        32,
        Capacity::Entries(8192),
        LastValuePredictor::new(Capacity::Entries(8192)),
    );
    let lv = run_pipeline_on(
        source,
        bench,
        Box::new(HgvqEngine::from_predictor(lv)),
        params,
    );
    let none = run_pipeline_on(source, bench, Box::new(SgvqEngine::paper_default()), params);
    FillerRow {
        bench,
        stride_filler: (stride.vp.gated_accuracy(), stride.vp.coverage()),
        last_value_filler: (lv.vp.gated_accuracy(), lv.vp.coverage()),
        no_filler: (none.vp.gated_accuracy(), none.vp.coverage()),
    }
}

/// Confidence-mechanism ablation result.
#[derive(Debug, Clone)]
pub struct ConfidenceRow {
    /// Confidence threshold swept (0 = gating off: speculate on every
    /// prediction).
    pub threshold: u8,
    /// Mean gated accuracy over all benchmarks.
    pub accuracy: f64,
    /// Mean coverage.
    pub coverage: f64,
    /// Harmonic-mean speedup over the no-VP baseline.
    pub speedup: f64,
}

/// Ablates the 3-bit confidence mechanism on the HGVQ engine: thresholds
/// 0 (off), 2, 4 (paper), 6.
pub fn ablate_confidence(params: RunParams) -> Vec<ConfidenceRow> {
    ablate_confidence_on(&SyntheticSource::new(params.seed), params)
}

/// The confidence thresholds swept by [`ablate_confidence`].
pub fn ablate_confidence_thresholds() -> [u8; 4] {
    [0, 2, 4, 6]
}

/// [`ablate_confidence`] against an explicit instruction origin.
pub fn ablate_confidence_on(source: &dyn TraceSource, params: RunParams) -> Vec<ConfidenceRow> {
    ablate_confidence_thresholds()
        .into_iter()
        .map(|threshold| ablate_confidence_point(source, threshold, params))
        .collect()
}

/// One threshold's confidence-ablation row (all benchmarks inside) — the
/// independently schedulable cell.
pub fn ablate_confidence_point(
    source: &dyn TraceSource,
    threshold: u8,
    params: RunParams,
) -> ConfidenceRow {
    let mut accs = Vec::new();
    let mut covs = Vec::new();
    let mut ratios = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_pipeline_on(source, bench, Box::new(NoVp), params).ipc();
        let config = ConfidenceConfig {
            threshold,
            ..ConfidenceConfig::default()
        };
        let p = HgvqPredictor::with_config(
            Capacity::Entries(8192),
            32,
            Capacity::Entries(8192),
            config,
            StridePredictor::new(Capacity::Entries(8192)),
        );
        let s = run_pipeline_on(
            source,
            bench,
            Box::new(HgvqEngine::from_predictor(p)),
            params,
        );
        accs.push(s.vp.gated_accuracy());
        covs.push(s.vp.coverage());
        ratios.push(s.ipc() / base);
    }
    ConfidenceRow {
        threshold,
        accuracy: accs.iter().sum::<f64>() / accs.len() as f64,
        coverage: covs.iter().sum::<f64>() / covs.len() as f64,
        speedup: harmonic_mean(ratios),
    }
}

// ---------------------------------------------------------------------
// Extensions: prefetching, the oracle limit, pipeline depth
// ---------------------------------------------------------------------

/// One benchmark's row of the prefetching extension study.
#[derive(Debug, Clone)]
pub struct PrefetchRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Baseline (no prefetch): D-cache miss rate and IPC.
    pub base_miss_rate: f64,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// IPC speedup ratios for next-line / local stride / gDiff prefetching.
    pub next_line: f64,
    /// Local-stride-directed prefetching speedup.
    pub stride: f64,
    /// gDiff-directed prefetching speedup.
    pub gdiff: f64,
    /// Useful-prefetch fraction for the gDiff prefetcher
    /// (useful / issued).
    pub gdiff_useful: f64,
}

/// The §6/§8 future-work extension: address-prediction-driven prefetching.
///
/// Confidently predicted load addresses start their cache fill at dispatch;
/// a later demand miss that finds the fill in flight pays only the
/// remaining latency.
pub fn prefetch(params: RunParams) -> Vec<PrefetchRow> {
    prefetch_on(&SyntheticSource::new(params.seed), params)
}

/// [`prefetch`] against an explicit instruction origin.
pub fn prefetch_on(source: &dyn TraceSource, params: RunParams) -> Vec<PrefetchRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| prefetch_bench(source, bench, params))
        .collect()
}

/// One benchmark's prefetch row — the independently schedulable cell.
pub fn prefetch_bench(
    source: &dyn TraceSource,
    bench: Benchmark,
    params: RunParams,
) -> PrefetchRow {
    let cfg = PipelineConfig::r10k();
    let base = run_pipeline_configured_on(source, bench, Box::new(NoVp), None, cfg, params);
    let nl = run_pipeline_configured_on(
        source,
        bench,
        Box::new(NoVp),
        Some(Box::new(NextLinePrefetcher::new(cfg.dcache.line_bytes))),
        cfg,
        params,
    );
    let st = run_pipeline_configured_on(
        source,
        bench,
        Box::new(NoVp),
        Some(Box::new(StridePrefetcher::new())),
        cfg,
        params,
    );
    let gd = run_pipeline_configured_on(
        source,
        bench,
        Box::new(NoVp),
        Some(Box::new(GDiffPrefetcher::new())),
        cfg,
        params,
    );
    PrefetchRow {
        bench,
        base_miss_rate: base.dcache_miss_rate,
        base_ipc: base.ipc(),
        next_line: nl.ipc() / base.ipc(),
        stride: st.ipc() / base.ipc(),
        gdiff: gd.ipc() / base.ipc(),
        gdiff_useful: if gd.prefetches_issued == 0 {
            0.0
        } else {
            gd.prefetches_useful as f64 / gd.prefetches_issued as f64
        },
    }
}

/// One benchmark's row of the oracle limit study.
#[derive(Debug, Clone)]
pub struct LimitRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// gDiff (HGVQ) speedup ratio.
    pub gdiff: f64,
    /// Perfect-value-prediction speedup ratio — the ceiling.
    pub oracle: f64,
}

/// How much of the perfect-value-prediction headroom gDiff captures
/// (the Sazeides \[24\] style limit study the paper's §7 leans on).
pub fn limit(params: RunParams) -> Vec<LimitRow> {
    limit_on(&SyntheticSource::new(params.seed), params)
}

/// [`limit`] against an explicit instruction origin.
pub fn limit_on(source: &dyn TraceSource, params: RunParams) -> Vec<LimitRow> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| limit_bench(source, bench, params))
        .collect()
}

/// One benchmark's limit-study row — the independently schedulable cell.
pub fn limit_bench(source: &dyn TraceSource, bench: Benchmark, params: RunParams) -> LimitRow {
    let base = run_pipeline_on(source, bench, Box::new(NoVp), params).ipc();
    let gd = run_pipeline_on(source, bench, Box::new(HgvqEngine::paper_default()), params).ipc();
    let oracle = run_pipeline_on(source, bench, Box::new(OracleEngine), params).ipc();
    LimitRow {
        bench,
        base_ipc: base,
        gdiff: gd / base,
        oracle: oracle / base,
    }
}

/// One front-end-depth point of the deeper-pipeline ablation.
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Fetch→dispatch depth (decode stages) swept.
    pub depth: u64,
    /// Matching branch redirect penalty.
    pub redirect: u64,
    /// Mean value delay observed (vortex).
    pub mean_delay: f64,
    /// H-mean speedup of gDiff (HGVQ) over no-VP at this depth.
    pub gdiff_speedup: f64,
    /// H-mean speedup of local stride at this depth.
    pub stride_speedup: f64,
}

/// The §8 future-work question: how does value prediction interact with a
/// deeper pipeline? The sweep measures the observed value delay and both
/// predictors' speedups as the fetch→dispatch depth and redirect penalty
/// grow.
pub fn ablate_depth(params: RunParams) -> Vec<DepthRow> {
    ablate_depth_on(&SyntheticSource::new(params.seed), params)
}

/// The (front-end depth, redirect penalty) points swept by
/// [`ablate_depth`].
pub fn ablate_depth_points() -> [(u64, u64); 4] {
    [(2, 3), (4, 6), (8, 10), (12, 16)]
}

/// [`ablate_depth`] against an explicit instruction origin.
pub fn ablate_depth_on(source: &dyn TraceSource, params: RunParams) -> Vec<DepthRow> {
    ablate_depth_points()
        .into_iter()
        .map(|point| ablate_depth_point(source, point, params))
        .collect()
}

/// One (depth, redirect) point of the depth ablation (all benchmarks
/// inside) — the independently schedulable cell.
pub fn ablate_depth_point(
    source: &dyn TraceSource,
    (depth, redirect): (u64, u64),
    params: RunParams,
) -> DepthRow {
    let config = PipelineConfig {
        front_end_depth: depth,
        redirect_penalty: redirect,
        ..PipelineConfig::r10k()
    };
    let mut gd_ratios = Vec::new();
    let mut st_ratios = Vec::new();
    let mut delay = 0.0;
    for bench in Benchmark::ALL {
        let base = run_pipeline_configured_on(source, bench, Box::new(NoVp), None, config, params);
        let gd = run_pipeline_configured_on(
            source,
            bench,
            Box::new(HgvqEngine::paper_default()),
            None,
            config,
            params,
        );
        let st = run_pipeline_configured_on(
            source,
            bench,
            Box::new(LocalEngine::stride_8k()),
            None,
            config,
            params,
        );
        gd_ratios.push(gd.ipc() / base.ipc());
        st_ratios.push(st.ipc() / base.ipc());
        if bench == Benchmark::Vortex {
            delay = base.delays.mean();
        }
    }
    DepthRow {
        depth,
        redirect,
        mean_delay: delay,
        gdiff_speedup: harmonic_mean(gd_ratios),
        stride_speedup: harmonic_mean(st_ratios),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_mean_delay_is_moderate() {
        let d = fig12(RunParams::tiny());
        assert!(d.mean > 1.0 && d.mean < 30.0, "mean {}", d.mean);
        let total: f64 = d.fractions.iter().sum();
        assert!(total > 0.5, "most delays within 0..=20: {total}");
    }

    #[test]
    fn fig12_json_carries_sim_stats_and_percentiles() {
        let d = fig12(RunParams::tiny());
        let j = d.to_json();
        // The acceptance surface of the run report: cycles, IPC, vp
        // accuracy/coverage, and delay percentiles must all be present
        // and survive a parse round trip.
        let text = j.to_json();
        let p = obs::JsonValue::parse(&text).expect("valid JSON");
        assert!(p.path("cycles").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(p.path("ipc").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(p.path("vp.coverage").and_then(|v| v.as_f64()).is_some());
        assert!(p
            .path("vp.gated_accuracy")
            .and_then(|v| v.as_f64())
            .is_some());
        assert!(p.path("delays.p50").and_then(|v| v.as_f64()).is_some());
        assert!(p.path("delays.p99").and_then(|v| v.as_f64()).is_some());
        assert_eq!(p.path("bench").and_then(|v| v.as_str()), Some("vortex"));
        // And the pipeline runs were timed via spans.
        let timings = obs::span::snapshot();
        assert!(timings
            .iter()
            .any(|(n, s)| n == "pipeline.run" && s.count > 0));
    }

    #[test]
    fn fig16_gdiff_dominates_locals() {
        let rows = fig16(RunParams::tiny());
        let g_cov: f64 = rows.iter().map(|r| r.gdiff_coverage).sum::<f64>() / rows.len() as f64;
        let s_cov: f64 = rows.iter().map(|r| r.stride_coverage).sum::<f64>() / rows.len() as f64;
        let c_cov: f64 = rows.iter().map(|r| r.context_coverage).sum::<f64>() / rows.len() as f64;
        assert!(g_cov > s_cov, "gdiff coverage {g_cov} vs stride {s_cov}");
        assert!(s_cov > c_cov, "stride coverage {s_cov} vs context {c_cov}");
        let g_acc: f64 = rows.iter().map(|r| r.gdiff_accuracy).sum::<f64>() / rows.len() as f64;
        assert!(g_acc > 0.75, "gdiff accuracy {g_acc}");
    }

    #[test]
    fn fig13_sgvq_trails_hgvq() {
        let p = RunParams::tiny();
        let sgvq = fig13(p);
        let hgvq = fig16(p);
        let s: f64 = sgvq.iter().map(|r| r.gdiff_coverage).sum();
        let h: f64 = hgvq.iter().map(|r| r.gdiff_coverage).sum();
        assert!(h > s, "hybrid queue must add coverage: {h} vs {s}");
    }

    #[test]
    fn fig19_gdiff_wins_harmonic_mean() {
        let rows = fig19(RunParams::tiny());
        let g = harmonic_mean(rows.iter().map(|r| r.gdiff));
        let s = harmonic_mean(rows.iter().map(|r| r.local_stride));
        assert!(g >= s - 0.01, "gdiff {g} vs stride {s}");
        assert!(g > 1.0, "value speculation must speed things up: {g}");
    }

    #[test]
    fn oracle_is_an_upper_bound() {
        let p = RunParams::tiny();
        for bench in [Benchmark::Gcc, Benchmark::Twolf] {
            let rows = limit(p);
            let r = rows.iter().find(|r| r.bench == bench).unwrap();
            assert!(
                r.oracle >= r.gdiff - 0.02,
                "{bench}: oracle {} vs gdiff {}",
                r.oracle,
                r.gdiff
            );
            assert!(
                r.oracle > 1.05,
                "{bench}: perfect VP must clearly help: {}",
                r.oracle
            );
        }
    }

    #[test]
    fn prefetching_helps_memory_bound_benchmarks() {
        let rows = prefetch(RunParams::tiny());
        let mcf = rows.iter().find(|r| r.bench == Benchmark::Mcf).unwrap();
        assert!(
            mcf.base_miss_rate > 0.2,
            "mcf misses a lot: {}",
            mcf.base_miss_rate
        );
        // Bump allocation gives mcf strong spatial locality: next-line
        // prefetching must clearly win there.
        assert!(
            mcf.next_line > 1.05,
            "next-line must speed mcf up: {}",
            mcf.next_line
        );
        // The gdiff prefetcher is coverage-limited on the jittered chase
        // but must never hurt, and what it prefetches must be useful.
        assert!(
            mcf.gdiff >= 0.995,
            "gdiff prefetching must not hurt: {}",
            mcf.gdiff
        );
        assert!(
            mcf.gdiff_useful > 0.5,
            "gdiff prefetches are accurate: {}",
            mcf.gdiff_useful
        );
    }

    #[test]
    fn harmonic_mean_is_correct() {
        assert!((harmonic_mean([1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean([2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean([1.0, 2.0]) - 4.0 / 3.0).abs() < 1e-12);
    }
}
