//! Experiment driver: `cargo run -p harness --release -- <experiment>`.
//!
//! Experiments: fig1 fig8 fig9 fig10 fig12 fig13 fig16 fig18a fig18b
//! table2 fig19 ablate-queue ablate-filler ablate-confidence all
//!
//! Options: `--scale <f>` multiplies run sizes (default 1.0),
//! `--seed <n>` sets the workload seed (default 42),
//! `--json <path|->` writes a machine-readable run report,
//! `--trace-last <n>` records pipeline trace events and dumps the last n.
//!
//! Subcommands: `record --out <file> <experiment>...` captures the
//! instruction streams the named experiments consume into a binary trace
//! container; `replay <file>` re-runs those experiments from the capture
//! (same numbers, no synthesis); `convert <in> <out>` translates between
//! the text trace format and the binary container (direction sniffed from
//! the input's magic bytes).

use harness::record::{open_replay, record};
use harness::report::{f2, pct, speedup_pct, RunReport, Table};
use harness::{
    ablate_confidence_on, ablate_depth_on, ablate_filler_on, ablate_queue_on, fig10_on, fig12_on,
    fig13_on, fig16_on, fig18_on, fig19_on, fig1_on, fig8_on, fig9_on, limit_on,
    pipe::harmonic_mean, prefetch_on, profile::ablate_queue_orders, profile::fig10_delays,
    profile::fig9_sizes, table2_on, Fig18Row, PipelineVpRow, RunParams,
};
use obs::trace::tracer;
use obs::{JsonValue, Registry};
use predictors::MarkovConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use workloads::{SyntheticSource, TraceSource};

/// Set when the JSON report goes to stdout (`--json -`): the human-readable
/// tables move to stderr so stdout stays parseable.
static TABLES_TO_STDERR: AtomicBool = AtomicBool::new(false);

macro_rules! out {
    ($($t:tt)*) => {
        if TABLES_TO_STDERR.load(Ordering::Relaxed) {
            eprint!($($t)*)
        } else {
            print!($($t)*)
        }
    };
}

macro_rules! outln {
    ($($t:tt)*) => {
        if TABLES_TO_STDERR.load(Ordering::Relaxed) {
            eprintln!($($t)*)
        } else {
            println!($($t)*)
        }
    };
}

/// Command-line options, parsed without panicking.
struct Options {
    scale: f64,
    seed: u64,
    /// `--json <path>`; `-` means stdout.
    json: Option<String>,
    /// `--trace-last <n>`: ring capacity and dump size.
    trace_last: Option<usize>,
    experiments: Vec<String>,
}

/// Parses the argument list. On error, returns the message to print before
/// usage + exit 2.
fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 42,
        json: None,
        trace_last: None,
        experiments: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => opts.scale = parse_value(&a, it.next())?,
            "--seed" => opts.seed = parse_value(&a, it.next())?,
            "--trace-last" => opts.trace_last = Some(parse_value(&a, it.next())?),
            "--json" => {
                opts.json = Some(
                    it.next()
                        .ok_or_else(|| format!("{a} needs a value (a path or -)"))?,
                )
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown option: {other}")),
            other => opts.experiments.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid value '{v}'"))
}

/// The canonical experiment list (`all` expands to this).
const ALL_EXPERIMENTS: [&str; 17] = [
    "fig1",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "fig16",
    "fig18a",
    "fig18b",
    "table2",
    "fig19",
    "ablate-queue",
    "ablate-filler",
    "ablate-confidence",
    "ablate-depth",
    "prefetch",
    "limit",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            args.remove(0);
            main_record(args)
        }
        Some("replay") => {
            args.remove(0);
            main_replay(args)
        }
        Some("convert") => {
            args.remove(0);
            main_convert(args)
        }
        _ => main_run(args),
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2);
}

/// Expands `all` and validates every experiment name up front so a typo
/// late in the list doesn't discard an hour of completed experiments.
fn select_experiments(named: &[String]) -> Vec<String> {
    if named.is_empty() {
        usage_error("no experiment named");
    }
    let selected: Vec<String> = if named.iter().any(|e| e == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        named.to_vec()
    };
    for exp in &selected {
        if !ALL_EXPERIMENTS.contains(&exp.as_str()) {
            usage_error(&format!("unknown experiment: {exp}"));
        }
    }
    selected
}

fn main_run(args: Vec<String>) {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                // --help
                print_usage();
                return;
            }
            usage_error(&msg);
        }
    };
    if opts.json.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }
    let selected = select_experiments(&opts.experiments);
    let mut profile = RunParams::profile_default().scaled(opts.scale);
    let mut pipelinep = RunParams::pipeline_default().scaled(opts.scale);
    profile.seed = opts.seed;
    pipelinep.seed = opts.seed;
    let source = SyntheticSource::new(opts.seed);
    execute(Execution {
        source: &source,
        selected: &selected,
        profile,
        pipeline: pipelinep,
        seed: opts.seed,
        scale: opts.scale,
        json: opts.json,
        trace_last: opts.trace_last,
        sections: Vec::new(),
    });
}

/// One experiment sweep: the instruction origin, what to run, and how to
/// report it. Shared by the direct (`main_run`) and `replay` paths so both
/// produce byte-identical `experiments` report sections.
struct Execution<'a> {
    source: &'a dyn TraceSource,
    selected: &'a [String],
    profile: RunParams,
    pipeline: RunParams,
    seed: u64,
    scale: f64,
    json: Option<String>,
    trace_last: Option<usize>,
    /// Extra report sections (e.g. replay's tracefile metrics).
    sections: Vec<(String, JsonValue)>,
}

fn execute(x: Execution<'_>) {
    if let Some(n) = x.trace_last {
        tracer().enable(n.max(1));
    }

    let mut report = RunReport::new(x.seed, x.scale);
    for exp in x.selected {
        let span = obs::span::span(format!("experiment.{exp}"));
        let t0 = std::time::Instant::now();
        let data = run_experiment(exp, x.source, x.profile, x.pipeline);
        report.add_experiment(exp, data);
        drop(span);
        eprintln!("[{exp} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }

    if let Some(n) = x.trace_last {
        tracer().disable();
        let events = tracer().last(n);
        eprintln!(
            "== trace: last {} of {} recorded events ==",
            events.len(),
            tracer().recorded()
        );
        for ev in &events {
            eprintln!("  {ev}");
        }
        let section = JsonValue::object()
            .with("recorded", tracer().recorded())
            .with(
                "events",
                JsonValue::Arr(events.iter().map(|e| e.to_json()).collect()),
            );
        report.add_section("trace", section);
    }
    for (name, section) in x.sections {
        report.add_section(&name, section);
    }

    if let Some(dest) = &x.json {
        let text = report.finish().to_json_pretty();
        if dest == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_experiment(
    exp: &str,
    source: &dyn TraceSource,
    profile: RunParams,
    pipelinep: RunParams,
) -> JsonValue {
    match exp {
        "fig1" => run_fig1(source, profile),
        "fig8" => run_fig8(source, profile),
        "fig9" => run_fig9(source, profile),
        "fig10" => run_fig10(source, profile),
        "fig12" => run_fig12(source, pipelinep),
        "fig13" => run_fig13(source, pipelinep),
        "fig16" => run_fig16(source, pipelinep),
        "fig18a" => run_fig18(source, pipelinep, false),
        "fig18b" => run_fig18(source, pipelinep, true),
        "table2" => run_table2(source, pipelinep),
        "fig19" => run_fig19(source, pipelinep),
        "ablate-queue" => run_ablate_queue(source, profile),
        "ablate-filler" => run_ablate_filler(source, pipelinep),
        "ablate-confidence" => run_ablate_confidence(source, pipelinep),
        "ablate-depth" => run_ablate_depth(source, pipelinep),
        "prefetch" => run_prefetch(source, pipelinep),
        "limit" => run_limit(source, pipelinep),
        _ => unreachable!("validated by select_experiments"),
    }
}

fn main_record(args: Vec<String>) {
    let mut out: Option<String> = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut experiments = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--out needs a value (a file path)"),
                })
            }
            "--scale" => match parse_value(&a, it.next()) {
                Ok(v) => scale = v,
                Err(m) => usage_error(&m),
            },
            "--seed" => match parse_value(&a, it.next()) {
                Ok(v) => seed = v,
                Err(m) => usage_error(&m),
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown record option: {other}"))
            }
            other => experiments.push(other.to_string()),
        }
    }
    let Some(out) = out else {
        usage_error("record needs --out FILE");
    };
    let selected = select_experiments(&experiments);
    let mut profile = RunParams::profile_default().scaled(scale);
    let mut pipelinep = RunParams::pipeline_default().scaled(scale);
    profile.seed = seed;
    pipelinep.seed = seed;

    let mut registry = Registry::new();
    let rep = match record(&out, &selected, profile, pipelinep, scale, &mut registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot record {out}: {e}");
            std::process::exit(1);
        }
    };
    let mut t = Table::new(
        format!("Recorded {out} (seed {seed}, scale {scale})"),
        &["benchmark", "instructions"],
    );
    for (bench, n) in &rep.per_bench {
        t.row(vec![bench.to_string(), n.to_string()]);
    }
    t.row(vec!["total".into(), rep.records.to_string()]);
    out!("{}", t.render());
    outln!(
        "container: {} bytes ({:.2} bytes/inst, {:.1}x smaller than text)",
        rep.binary_bytes,
        rep.bytes_per_inst(),
        rep.compression_vs_text()
    );
    outln!(
        "encode: {:.0} inst/s, {:.1} MiB/s",
        rep.insts_per_sec,
        rep.mib_per_sec
    );
}

fn main_replay(args: Vec<String>) {
    let mut file: Option<String> = None;
    let mut json: Option<String> = None;
    let mut trace_last: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--json needs a value (a path or -)"),
                })
            }
            "--trace-last" => match parse_value(&a, it.next()) {
                Ok(v) => trace_last = Some(v),
                Err(m) => usage_error(&m),
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unknown replay option: {other}"))
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => usage_error(&format!("unexpected argument: {other}")),
        }
    }
    let Some(file) = file else {
        usage_error("replay needs a trace file");
    };
    if json.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }

    let mut registry = Registry::new();
    let plan = match open_replay(&file, &mut registry) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot replay {file}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "replaying {} (seed {}, scale {}): {}",
        plan.source.describe(),
        plan.seed,
        plan.scale,
        plan.experiments.join(" ")
    );
    execute(Execution {
        source: &plan.source,
        selected: &plan.experiments,
        profile: plan.profile,
        pipeline: plan.pipeline,
        seed: plan.seed,
        scale: plan.scale,
        json,
        trace_last,
        sections: vec![("tracefile".to_string(), registry.to_json())],
    });
}

fn main_convert(args: Vec<String>) {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if positional.len() != 2 || args.len() != 2 {
        usage_error("convert takes exactly: convert IN OUT");
    }
    let (input, output) = (positional[0].clone(), positional[1].clone());
    match convert_any(&input, &output) {
        Ok(stats) => outln!(
            "converted {} instructions: {} text bytes <-> {} binary bytes",
            stats.records,
            stats.text_bytes,
            stats.binary_bytes
        ),
        Err(e) => {
            eprintln!("error: cannot convert {input}: {e}");
            std::process::exit(1);
        }
    }
}

/// Converts in whichever direction the input's magic bytes call for.
fn convert_any(
    input: &str,
    output: &str,
) -> Result<tracefile::ConvertStats, Box<dyn std::error::Error>> {
    use std::io::{BufReader, BufWriter, Read};
    let mut head = [0u8; 8];
    let n = std::fs::File::open(input)?.read(&mut head)?;
    if n == 8 && head == tracefile::container::MAGIC {
        let mut r = tracefile::TraceReader::open(input)?;
        let mut w = BufWriter::new(std::fs::File::create(output)?);
        let stats = tracefile::binary_to_text(&mut r, &mut w)?;
        std::io::Write::flush(&mut w)?;
        Ok(stats)
    } else {
        let r = BufReader::new(std::fs::File::open(input)?);
        let mut w = tracefile::TraceWriter::create(output, tracefile::DEFAULT_CHUNK_CAP)?;
        let name = std::path::Path::new(input)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
            .to_string();
        let mut stats = tracefile::text_to_binary(r, &mut w, &name)?;
        w.finish()?;
        stats.binary_bytes = std::fs::metadata(output)?.len();
        Ok(stats)
    }
}

fn print_usage() {
    eprintln!(
        "usage: harness [--scale F] [--seed N] [--json PATH|-] [--trace-last N] <experiment>...\n\
         \x20      harness record --out FILE [--scale F] [--seed N] <experiment>...\n\
         \x20      harness replay FILE [--json PATH|-] [--trace-last N]\n\
         \x20      harness convert IN OUT\n\
         experiments: fig1 fig8 fig9 fig10 fig12 fig13 fig16 fig18a fig18b\n\
         table2 fig19 ablate-queue ablate-filler ablate-confidence\n\
         ablate-depth prefetch limit all\n\
         --json writes a machine-readable run report (- for stdout)\n\
         --trace-last records pipeline events and dumps the final N\n\
         record captures the instruction streams the named experiments\n\
         consume into a chunked, CRC-checked binary container; replay\n\
         re-runs them from the capture with identical results; convert\n\
         translates text traces to the container and back (direction\n\
         sniffed from the input's magic bytes)"
    );
}

fn avg(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn run_fig1(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let f = fig1_on(source, p);
    outln!("== Figure 1: hard-to-predict value sequence (parser spill/fill reload) ==");
    outln!("first 40 values (paper plots the last three digits):");
    for chunk in f.sequence.iter().take(40).collect::<Vec<_>>().chunks(10) {
        outln!(
            "  {}",
            chunk
                .iter()
                .map(|v| format!("{v:>5}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    outln!(
        "local stride accuracy on this instruction: {} (paper: 4%)",
        pct(f.stride_accuracy)
    );
    outln!(
        "local DFCM accuracy on this instruction:   {} (paper: 2%)",
        pct(f.dfcm_accuracy)
    );
    outln!(
        "gdiff(q=8) accuracy on this instruction:   {} (paper: ~100% via the correlated load)",
        pct(f.gdiff_accuracy)
    );
    JsonValue::object()
        .with(
            "sequence_head",
            f.sequence.iter().take(40).copied().collect::<Vec<u64>>(),
        )
        .with("stride_accuracy", f.stride_accuracy)
        .with("dfcm_accuracy", f.dfcm_accuracy)
        .with("gdiff_accuracy", f.gdiff_accuracy)
}

fn run_fig8(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig8_on(source, p);
    let mut t = Table::new(
        "Figure 8: profile value-prediction accuracy (all value producers, unlimited tables)",
        &["bench", "stride", "DFCM", "gdiff(q=8)", "gdiff(q=32)"],
    );
    for r in &rows {
        t.row(vec![
            r.bench.to_string(),
            pct(r.stride),
            pct(r.dfcm),
            pct(r.gdiff_q8),
            pct(r.gdiff_q32),
        ]);
    }
    t.row(vec![
        "average".into(),
        pct(avg(rows.iter().map(|r| r.stride))),
        pct(avg(rows.iter().map(|r| r.dfcm))),
        pct(avg(rows.iter().map(|r| r.gdiff_q8))),
        pct(avg(rows.iter().map(|r| r.gdiff_q32))),
    ]);
    out!("{}", t.render());
    outln!("(paper averages: stride 57%, DFCM 64%, gdiff(q=8) 73%; gap recovers to 59.7% at q=32)");
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("stride", r.stride)
            .with("dfcm", r.dfcm)
            .with("gdiff_q8", r.gdiff_q8)
            .with("gdiff_q32", r.gdiff_q32)
    })
}

/// Wraps per-benchmark rows as `{"rows": [...]}`.
fn rows_json<T>(rows: &[T], f: impl Fn(&T) -> JsonValue) -> JsonValue {
    JsonValue::object().with("rows", JsonValue::Arr(rows.iter().map(f).collect()))
}

fn run_fig9(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig9_on(source, p);
    let sizes = fig9_sizes();
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(sizes.iter().map(|s| match s {
        None => "unlimited".to_string(),
        Some(n) => format!("{}K", n / 1024),
    }));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 9: gdiff table aliasing (conflict rate) per table size",
        &hdr_refs,
    );
    for r in &rows {
        let mut cells = vec![r.bench.to_string()];
        cells.extend(r.conflict_rates.iter().map(|c| pct(*c)));
        t.row(cells);
    }
    out!("{}", t.render());
    let degr = avg(rows.iter().map(|r| r.accuracy_unlimited - r.accuracy_8k));
    outln!(
        "mean accuracy loss of the 8K table vs unlimited: {} (paper: < 1%)",
        pct(degr)
    );
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("conflict_rates", r.conflict_rates.clone())
            .with("accuracy_unlimited", r.accuracy_unlimited)
            .with("accuracy_8k", r.accuracy_8k)
    })
}

fn run_fig10(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig10_on(source, p);
    let delays = fig10_delays();
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(delays.iter().map(|d| format!("T={d}")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 10: gdiff(q=8) accuracy under value delay",
        &hdr_refs,
    );
    for r in &rows {
        let mut cells = vec![r.bench.to_string()];
        cells.extend(r.accuracy.iter().map(|a| pct(*a)));
        t.row(cells);
    }
    let mut cells = vec!["average".to_string()];
    for i in 0..delays.len() {
        cells.push(pct(avg(rows.iter().map(|r| r.accuracy[i]))));
    }
    t.row(cells);
    out!("{}", t.render());
    outln!("(paper averages: T=0 73% falling to T=16 52%)");
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("accuracy", r.accuracy.clone())
    })
    .with(
        "delays",
        delays.iter().map(|d| *d as u64).collect::<Vec<u64>>(),
    )
}

fn run_fig12(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let d = fig12_on(source, p);
    outln!("== Figure 12: value-delay distribution ({}) ==", d.bench);
    for (i, f) in d.fractions.iter().enumerate() {
        outln!(
            "  delay {i:>2}: {:>6}  {}",
            pct(*f),
            "#".repeat((f * 200.0) as usize)
        );
    }
    outln!("mean value delay: {:.2} (paper: ~5)", d.mean);
    d.to_json()
}

fn vp_table(title: &str, rows: &[PipelineVpRow], with_context: bool) -> JsonValue {
    let headers: Vec<&str> = if with_context {
        vec![
            "bench",
            "gdiff acc",
            "gdiff cov",
            "stride acc",
            "stride cov",
            "context acc",
            "context cov",
        ]
    } else {
        vec![
            "bench",
            "gdiff acc",
            "gdiff cov",
            "stride acc",
            "stride cov",
        ]
    };
    let mut t = Table::new(title, &headers);
    for r in rows {
        let mut cells = vec![
            r.bench.to_string(),
            pct(r.gdiff_accuracy),
            pct(r.gdiff_coverage),
            pct(r.stride_accuracy),
            pct(r.stride_coverage),
        ];
        if with_context {
            cells.push(pct(r.context_accuracy));
            cells.push(pct(r.context_coverage));
        }
        t.row(cells);
    }
    let mut cells = vec![
        "average".to_string(),
        pct(avg(rows.iter().map(|r| r.gdiff_accuracy))),
        pct(avg(rows.iter().map(|r| r.gdiff_coverage))),
        pct(avg(rows.iter().map(|r| r.stride_accuracy))),
        pct(avg(rows.iter().map(|r| r.stride_coverage))),
    ];
    if with_context {
        cells.push(pct(avg(rows.iter().map(|r| r.context_accuracy))));
        cells.push(pct(avg(rows.iter().map(|r| r.context_coverage))));
    }
    t.row(cells);
    out!("{}", t.render());
    rows_json(rows, |r| {
        let mut j = JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("gdiff_accuracy", r.gdiff_accuracy)
            .with("gdiff_coverage", r.gdiff_coverage)
            .with("stride_accuracy", r.stride_accuracy)
            .with("stride_coverage", r.stride_coverage);
        if with_context {
            j = j
                .with("context_accuracy", r.context_accuracy)
                .with("context_coverage", r.context_coverage);
        }
        j
    })
}

fn run_fig13(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig13_on(source, p);
    let j = vp_table(
        "Figure 13: gdiff with SGVQ (q=32) vs local stride, in-pipeline, 3-bit confidence",
        &rows,
        false,
    );
    outln!("(paper averages: gdiff 74% acc / 49% cov; stride 89% acc / 55% cov)");
    j
}

fn run_fig16(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig16_on(source, p);
    let j = vp_table(
        "Figure 16: gdiff with HGVQ (q=32) vs local stride vs local context",
        &rows,
        true,
    );
    outln!("(paper averages: gdiff 91% acc / 64% cov; stride 89% / 55%; context ~87% / 45%)");
    j
}

fn run_fig18(source: &dyn TraceSource, p: RunParams, missing: bool) -> JsonValue {
    let rows = fig18_on(source, p, MarkovConfig::paper_256k());
    let (title, note) = if missing {
        (
            "Figure 18b: predictability of MISSING load addresses",
            "(paper averages: ls 25% cov/55% acc; gs 33% cov/53% acc; markov 69% cov/20% acc)",
        )
    } else {
        (
            "Figure 18a: load-address predictability (all loads)",
            "(paper averages: ls 55% cov/86% acc; gs 63% cov/86% acc; markov 87% cov/33% acc)",
        )
    };
    let mut t = Table::new(
        title,
        &[
            "bench",
            "ls cov",
            "ls acc",
            "gs cov",
            "gs acc",
            "markov cov",
            "markov acc",
        ],
    );
    let sel = |r: &Fig18Row| -> [(f64, f64); 3] {
        if missing {
            [r.stride_miss, r.gdiff_miss, r.markov_miss]
        } else {
            [r.stride, r.gdiff, r.markov]
        }
    };
    for r in &rows {
        let [s, g, m] = sel(r);
        t.row(vec![
            r.bench.to_string(),
            pct(s.0),
            pct(s.1),
            pct(g.0),
            pct(g.1),
            pct(m.0),
            pct(m.1),
        ]);
    }
    let cols: Vec<f64> = (0..6)
        .map(|i| {
            avg(rows.iter().map(|r| {
                let [s, g, m] = sel(r);
                [s.0, s.1, g.0, g.1, m.0, m.1][i]
            }))
        })
        .collect();
    t.row(
        std::iter::once("average".to_string())
            .chain(cols.iter().map(|c| pct(*c)))
            .collect(),
    );
    out!("{}", t.render());
    outln!("{note}");
    rows_json(&rows, |r| {
        let [s, g, m] = sel(r);
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("stride_coverage", s.0)
            .with("stride_accuracy", s.1)
            .with("gdiff_coverage", g.0)
            .with("gdiff_accuracy", g.1)
            .with("markov_coverage", m.0)
            .with("markov_accuracy", m.1)
    })
}

fn run_table2(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = table2_on(source, p);
    let mut t = Table::new(
        "Table 2: baseline IPC (4-way, 64-entry window, no value speculation)",
        &["bench", "IPC"],
    );
    for (b, ipc) in &rows {
        t.row(vec![b.to_string(), f2(*ipc)]);
    }
    out!("{}", t.render());
    rows_json(&rows, |(b, ipc)| {
        JsonValue::object()
            .with("bench", b.to_string())
            .with("ipc", *ipc)
    })
}

fn run_fig19(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = fig19_on(source, p);
    let mut t = Table::new(
        "Figure 19: speedup of value speculation over the no-VP baseline",
        &[
            "bench",
            "base IPC",
            "local stride",
            "local context",
            "gdiff (HGVQ)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.bench.to_string(),
            f2(r.baseline_ipc),
            speedup_pct(r.local_stride),
            speedup_pct(r.local_context),
            speedup_pct(r.gdiff),
        ]);
    }
    t.row(vec![
        "H-mean".into(),
        String::new(),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.local_stride))),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.local_context))),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.gdiff))),
    ]);
    out!("{}", t.render());
    outln!("(paper: gdiff up to +53% (mcf), H-mean +19.2%; local stride H-mean ~+15%)");
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("baseline_ipc", r.baseline_ipc)
            .with("local_stride", r.local_stride)
            .with("local_context", r.local_context)
            .with("gdiff", r.gdiff)
    })
    .with("hmean_gdiff", harmonic_mean(rows.iter().map(|r| r.gdiff)))
    .with(
        "hmean_local_stride",
        harmonic_mean(rows.iter().map(|r| r.local_stride)),
    )
}

fn run_ablate_queue(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = ablate_queue_on(source, p);
    let orders = ablate_queue_orders();
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(orders.iter().map(|o| format!("q={o}")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Ablation: gdiff profile accuracy vs queue order", &hdr_refs);
    for r in &rows {
        let mut cells = vec![r.bench.to_string()];
        cells.extend(r.accuracy.iter().map(|a| pct(*a)));
        t.row(cells);
    }
    out!("{}", t.render());
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("accuracy", r.accuracy.clone())
    })
    .with(
        "orders",
        orders.iter().map(|o| *o as u64).collect::<Vec<u64>>(),
    )
}

fn run_ablate_filler(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = ablate_filler_on(source, p);
    let mut t = Table::new(
        "Ablation: HGVQ filler choice (accuracy / coverage)",
        &[
            "bench",
            "stride filler",
            "last-value filler",
            "no filler (SGVQ)",
        ],
    );
    for r in &rows {
        let f = |(a, c): (f64, f64)| format!("{} / {}", pct(a), pct(c));
        t.row(vec![
            r.bench.to_string(),
            f(r.stride_filler),
            f(r.last_value_filler),
            f(r.no_filler),
        ]);
    }
    out!("{}", t.render());
    let acc_cov = |(a, c): (f64, f64)| JsonValue::object().with("accuracy", a).with("coverage", c);
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("stride_filler", acc_cov(r.stride_filler))
            .with("last_value_filler", acc_cov(r.last_value_filler))
            .with("no_filler", acc_cov(r.no_filler))
    })
}

fn run_prefetch(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = prefetch_on(source, p);
    let mut t = Table::new(
        "Extension: address-prediction-driven prefetching (IPC speedup over no-prefetch)",
        &[
            "bench",
            "miss rate",
            "base IPC",
            "next-line",
            "stride",
            "gdiff",
            "gdiff useful",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.bench.to_string(),
            pct(r.base_miss_rate),
            f2(r.base_ipc),
            speedup_pct(r.next_line),
            speedup_pct(r.stride),
            speedup_pct(r.gdiff),
            pct(r.gdiff_useful),
        ]);
    }
    t.row(vec![
        "H-mean".into(),
        String::new(),
        String::new(),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.next_line))),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.stride))),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.gdiff))),
        String::new(),
    ]);
    out!("{}", t.render());
    outln!(
        "(the paper's §6/§8 future work: gdiff-detected global stride locality driving prefetch)"
    );
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("base_miss_rate", r.base_miss_rate)
            .with("base_ipc", r.base_ipc)
            .with("next_line", r.next_line)
            .with("stride", r.stride)
            .with("gdiff", r.gdiff)
            .with("gdiff_useful", r.gdiff_useful)
    })
}

fn run_limit(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = limit_on(source, p);
    let mut t = Table::new(
        "Limit study: gdiff vs perfect value prediction (oracle)",
        &[
            "bench",
            "base IPC",
            "gdiff (HGVQ)",
            "oracle",
            "headroom captured",
        ],
    );
    for r in &rows {
        let captured = if r.oracle > 1.0 {
            (r.gdiff - 1.0) / (r.oracle - 1.0)
        } else {
            0.0
        };
        t.row(vec![
            r.bench.to_string(),
            f2(r.base_ipc),
            speedup_pct(r.gdiff),
            speedup_pct(r.oracle),
            pct(captured.clamp(0.0, 1.0)),
        ]);
    }
    t.row(vec![
        "H-mean".into(),
        String::new(),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.gdiff))),
        speedup_pct(harmonic_mean(rows.iter().map(|r| r.oracle))),
        String::new(),
    ]);
    out!("{}", t.render());
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("bench", r.bench.to_string())
            .with("base_ipc", r.base_ipc)
            .with("gdiff", r.gdiff)
            .with("oracle", r.oracle)
    })
}

fn run_ablate_depth(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = ablate_depth_on(source, p);
    let mut t = Table::new(
        "Ablation: front-end depth (deeper pipelines, §8 future work)",
        &[
            "depth",
            "redirect",
            "mean value delay",
            "stride speedup",
            "gdiff speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.depth.to_string(),
            r.redirect.to_string(),
            format!("{:.1}", r.mean_delay),
            speedup_pct(r.stride_speedup),
            speedup_pct(r.gdiff_speedup),
        ]);
    }
    out!("{}", t.render());
    outln!("(in this machine deeper front ends throttle dispatch via redirect cost, shrinking");
    outln!(" the in-flight value count and with it the headroom value prediction can exploit)");
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("depth", r.depth)
            .with("redirect", r.redirect)
            .with("mean_delay", r.mean_delay)
            .with("stride_speedup", r.stride_speedup)
            .with("gdiff_speedup", r.gdiff_speedup)
    })
}

fn run_ablate_confidence(source: &dyn TraceSource, p: RunParams) -> JsonValue {
    let rows = ablate_confidence_on(source, p);
    let mut t = Table::new(
        "Ablation: confidence threshold on the HGVQ engine (means over benchmarks)",
        &["threshold", "accuracy", "coverage", "H-mean speedup"],
    );
    for r in &rows {
        let thr = if r.threshold == 0 {
            "off (0)".to_string()
        } else {
            r.threshold.to_string()
        };
        t.row(vec![
            thr,
            pct(r.accuracy),
            pct(r.coverage),
            speedup_pct(r.speedup),
        ]);
    }
    out!("{}", t.render());
    outln!("(paper uses threshold 4: +2 correct / -1 incorrect, 3-bit counters)");
    rows_json(&rows, |r| {
        JsonValue::object()
            .with("threshold", r.threshold as u64)
            .with("accuracy", r.accuracy)
            .with("coverage", r.coverage)
            .with("speedup", r.speedup)
    })
}
