//! Experiment driver: `cargo run -p harness --release -- <experiment>`.
//!
//! Experiments: fig1 fig8 fig9 fig10 fig12 fig13 fig16 fig18a fig18b
//! table2 fig19 ablate-queue ablate-filler ablate-confidence all
//!
//! Options: `--scale <f>` multiplies run sizes (default 1.0),
//! `--seed <n>` sets the workload seed (default 42),
//! `--jobs <n>` / `-j<n>` sets the worker count (default: all cores);
//! output is byte-identical for every worker count,
//! `--json <path|->` writes a machine-readable run report,
//! `--trace-last <n>` records pipeline trace events and dumps the last n,
//! `--timeline <path>` exports a Chrome trace-event timeline of the run,
//! `--live-metrics <path|->` streams periodic NDJSON metric snapshots.
//!
//! Subcommands: `record --out <file> <experiment>...` captures the
//! instruction streams the named experiments consume into a binary trace
//! container; `replay <file>` re-runs those experiments from the capture
//! (same numbers, no synthesis); `convert <in> <out>` translates between
//! the text trace format and the binary container (direction sniffed from
//! the input's magic bytes); `export-metrics <experiment>...` runs
//! experiments and prints the merged registry in Prometheus text format;
//! `bench-diff <old.json> <new.json>` compares two run reports and fails
//! past a regression threshold; `serve` runs the `gdiff-serve/v1`
//! multi-session prediction daemon (Unix socket, `--stdio`, or
//! `--selftest`); `serve-client` streams a trace or synthesized benchmark
//! to a running daemon and prints the returned report; `logs` reads and
//! pretty-prints the structured binary journal that `--log` writes.

use harness::cells::{plan_for, ALL_EXPERIMENTS};
use harness::record::{open_replay, record};
use harness::report::{RunReport, Table};
use harness::sched::{default_jobs, run_plans, run_plans_live};
use harness::serve_cli;
use harness::RunParams;
use obs::trace::tracer;
use obs::{JsonValue, Registry, Sampler, SharedRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use workloads::{SyntheticSource, TraceSource};

/// Set when the JSON report goes to stdout (`--json -`): the human-readable
/// tables move to stderr so stdout stays parseable.
static TABLES_TO_STDERR: AtomicBool = AtomicBool::new(false);

macro_rules! out {
    ($($t:tt)*) => {
        if TABLES_TO_STDERR.load(Ordering::Relaxed) {
            eprint!($($t)*)
        } else {
            print!($($t)*)
        }
    };
}

macro_rules! outln {
    ($($t:tt)*) => {
        if TABLES_TO_STDERR.load(Ordering::Relaxed) {
            eprintln!($($t)*)
        } else {
            println!($($t)*)
        }
    };
}

/// Command-line options, parsed without panicking.
struct Options {
    scale: f64,
    seed: u64,
    /// `--jobs <n>` / `-j<n>`; `None` means one worker per core.
    jobs: Option<usize>,
    /// `--json <path>`; `-` means stdout.
    json: Option<String>,
    /// `--trace-last <n>`: ring capacity and dump size.
    trace_last: Option<usize>,
    /// `--timeline <path>`: Chrome trace-event JSON destination.
    timeline: Option<String>,
    /// `--live-metrics <path>`; `-` means stdout (tables move to stderr).
    live_metrics: Option<String>,
    /// `--live-interval-ms <n>`: snapshot period for `--live-metrics`.
    live_interval_ms: u64,
    /// `--hotpath-bench`: measure the update hot path and report it.
    hotpath_bench: bool,
    /// `--log <path>`: structured journal destination (live-only).
    log: Option<String>,
    /// `--log-level <level>`: minimum journal level (default info).
    log_level: obs::log::Level,
    experiments: Vec<String>,
}

/// Parses the argument list. On error, returns the message to print before
/// usage + exit 2.
fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 42,
        jobs: None,
        json: None,
        trace_last: None,
        timeline: None,
        live_metrics: None,
        live_interval_ms: 250,
        hotpath_bench: false,
        log: None,
        log_level: obs::log::Level::Info,
        experiments: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => opts.scale = parse_value(&a, it.next())?,
            "--seed" => opts.seed = parse_value(&a, it.next())?,
            "--trace-last" => opts.trace_last = Some(parse_trace_last(&a, it.next())?),
            "--jobs" | "-j" => opts.jobs = Some(parse_jobs(&a, it.next())?),
            "--json" => {
                opts.json = Some(
                    it.next()
                        .ok_or_else(|| format!("{a} needs a value (a path or -)"))?,
                )
            }
            "--timeline" => {
                opts.timeline = Some(
                    it.next()
                        .ok_or_else(|| format!("{a} needs a value (a file path)"))?,
                )
            }
            "--live-metrics" => {
                opts.live_metrics = Some(
                    it.next()
                        .ok_or_else(|| format!("{a} needs a value (a path or -)"))?,
                )
            }
            "--live-interval-ms" => {
                let n: u64 = parse_value(&a, it.next())?;
                if n == 0 {
                    return Err(format!("{a}: interval must be at least 1 ms"));
                }
                opts.live_interval_ms = n;
            }
            "--hotpath-bench" => opts.hotpath_bench = true,
            "--log" => {
                opts.log = Some(
                    it.next()
                        .ok_or_else(|| format!("{a} needs a value (a journal path)"))?,
                )
            }
            "--log-level" => opts.log_level = parse_level(&a, it.next())?,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown option: {other}")),
            // Attached worker count: -j4.
            other if other.starts_with("-j") => {
                opts.jobs = Some(parse_jobs("-j", Some(other[2..].to_string()))?)
            }
            other if other.starts_with('-') => return Err(format!("unknown option: {other}")),
            other => opts.experiments.push(other.to_string()),
        }
    }
    Ok(opts)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid value '{v}'"))
}

fn parse_jobs(flag: &str, value: Option<String>) -> Result<usize, String> {
    let n: usize = parse_value(flag, value)?;
    if n == 0 {
        return Err(format!("{flag}: worker count must be at least 1"));
    }
    Ok(n)
}

fn parse_trace_last(flag: &str, value: Option<String>) -> Result<usize, String> {
    let n: usize = parse_value(flag, value)?;
    if n == 0 {
        return Err(format!("{flag}: event count must be at least 1"));
    }
    Ok(n)
}

fn parse_level(flag: &str, value: Option<String>) -> Result<obs::log::Level, String> {
    serve_cli::parse_level(flag, value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            args.remove(0);
            main_record(args)
        }
        Some("replay") => {
            args.remove(0);
            main_replay(args)
        }
        Some("convert") => {
            args.remove(0);
            main_convert(args)
        }
        Some("explain") => {
            args.remove(0);
            main_explain(args)
        }
        Some("export-metrics") => {
            args.remove(0);
            main_export_metrics(args)
        }
        Some("bench-diff") => {
            args.remove(0);
            main_bench_diff(args)
        }
        Some("serve") => {
            args.remove(0);
            main_serve(args)
        }
        Some("serve-client") => {
            args.remove(0);
            main_serve_client(args)
        }
        Some("logs") => {
            args.remove(0);
            main_logs(args)
        }
        Some("sweep") => {
            args.remove(0);
            main_sweep(args)
        }
        Some("sweep-worker") => {
            args.remove(0);
            main_sweep_worker(args)
        }
        _ => main_run(args),
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2);
}

/// Expands `all` and validates every experiment name up front so a typo
/// late in the list doesn't discard an hour of completed experiments.
fn select_experiments(named: &[String]) -> Vec<String> {
    if named.is_empty() {
        usage_error("no experiment named");
    }
    let selected: Vec<String> = if named.iter().any(|e| e == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        named.to_vec()
    };
    for exp in &selected {
        if !ALL_EXPERIMENTS.contains(&exp.as_str()) {
            usage_error(&format!("unknown experiment: {exp}"));
        }
    }
    selected
}

fn main_run(args: Vec<String>) {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                // --help
                print_usage();
                return;
            }
            usage_error(&msg);
        }
    };
    if opts.json.as_deref() == Some("-") || opts.live_metrics.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }
    let selected = select_experiments(&opts.experiments);
    let mut profile = RunParams::profile_default().scaled(opts.scale);
    let mut pipelinep = RunParams::pipeline_default().scaled(opts.scale);
    profile.seed = opts.seed;
    pipelinep.seed = opts.seed;
    let source = SyntheticSource::new(opts.seed);
    execute(Execution {
        source: &source,
        selected: &selected,
        profile,
        pipeline: pipelinep,
        seed: opts.seed,
        scale: opts.scale,
        jobs: opts.jobs.unwrap_or_else(default_jobs),
        json: opts.json,
        trace_last: opts.trace_last,
        timeline: opts.timeline,
        live_metrics: opts.live_metrics,
        live_interval_ms: opts.live_interval_ms,
        hotpath: opts.hotpath_bench,
        log: opts.log,
        log_level: opts.log_level,
        sections: Vec::new(),
    });
}

/// One experiment sweep: the instruction origin, what to run, and how to
/// report it. Shared by the direct (`main_run`) and `replay` paths so both
/// produce byte-identical `experiments` report sections.
struct Execution<'a> {
    source: &'a dyn TraceSource,
    selected: &'a [String],
    profile: RunParams,
    pipeline: RunParams,
    seed: u64,
    scale: f64,
    /// Scheduler worker count (replay forces 1).
    jobs: usize,
    json: Option<String>,
    trace_last: Option<usize>,
    /// `--timeline`: Chrome trace-event JSON destination.
    timeline: Option<String>,
    /// `--live-metrics`: NDJSON snapshot stream destination (`-`: stdout).
    live_metrics: Option<String>,
    /// Snapshot period for `--live-metrics`.
    live_interval_ms: u64,
    /// `--hotpath-bench`: append the update-path timing section.
    hotpath: bool,
    /// `--log`: structured journal destination. Live-only: the tables,
    /// the `--json` report, and replay outputs are byte-identical with
    /// the journal on or off.
    log: Option<String>,
    /// Minimum journal level for `--log`.
    log_level: obs::log::Level,
    /// Extra report sections (e.g. replay's tracefile metrics).
    sections: Vec<(String, JsonValue)>,
}

/// Event capacity of the `--timeline` buffer: a full `all -j8` run emits
/// a few hundred coarse events, so 64Ki leaves generous headroom while
/// bounding a runaway run to ~10 MB of JSON.
const TIMELINE_CAPACITY: usize = 64 * 1024;

/// Snapshot ring size for `--live-metrics` (the stream itself is
/// unbounded; the ring only backs the end-of-run summary counts).
const LIVE_RING_CAP: usize = 1024;

fn execute(x: Execution<'_>) {
    let journal =
        match serve_cli::enable_journal(x.log.as_deref().map(std::path::Path::new), x.log_level) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    obs::log::info(
        "harness.run",
        "run started",
        &[
            ("experiments", obs::log::Value::from(x.selected.len())),
            ("jobs", obs::log::Value::from(x.jobs)),
            ("seed", obs::log::Value::from(x.seed)),
            ("scale", obs::log::Value::from(x.scale)),
        ],
    );
    if let Some(n) = x.trace_last {
        tracer().enable(n.max(1));
    }
    if x.timeline.is_some() {
        obs::timeline::enable(TIMELINE_CAPACITY);
        obs::timeline::set_thread_name("main");
    }
    // Live telemetry rides beside the deterministic outputs: workers merge
    // finished cells into this shared registry in completion order, and the
    // sampler streams delta snapshots; none of it feeds back into `master`.
    let live = x.live_metrics.as_ref().map(|_| SharedRegistry::new());
    let sampler = x.live_metrics.as_ref().map(|dest| {
        let writer: Box<dyn std::io::Write + Send> = if dest == "-" {
            Box::new(std::io::stdout())
        } else {
            match std::fs::File::create(dest) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot write {dest}: {e}");
                    std::process::exit(1);
                }
            }
        };
        Sampler::start(
            live.clone().expect("live registry exists"),
            Duration::from_millis(x.live_interval_ms),
            LIVE_RING_CAP,
            Some(writer),
        )
    });

    let plans = x
        .selected
        .iter()
        .map(|exp| plan_for(exp, x.source, x.profile, x.pipeline))
        .collect();
    let mut report = RunReport::new(x.seed, x.scale);
    let mut master = Registry::new();
    // Experiments fan out into per-benchmark cells across the workers, but
    // emission happens strictly in plan order, so the tables and the
    // `experiments` report section are byte-identical for any worker count.
    let cells = run_plans_live(plans, x.jobs, &mut master, live.as_ref(), |res| {
        out!("{}", res.text);
        eprintln!("[{} took {:.1}s]\n", res.name, res.busy.as_secs_f64());
        obs::log::info(
            "harness.run",
            "experiment finished",
            &[
                ("experiment", obs::log::Value::from(res.name.as_str())),
                ("busy_s", obs::log::Value::from(res.busy.as_secs_f64())),
            ],
        );
        report.add_experiment(&res.name, res.json);
    });

    // Timeline teardown happens before the sampler's final snapshot so a
    // ring overflow surfaces in the live stream (`timeline.dropped_events`)
    // as well as the journal — not just in a stderr afterthought.
    if let Some(dest) = &x.timeline {
        obs::timeline::disable();
        let dropped = obs::timeline::dropped();
        if dropped > 0 {
            obs::log::warn(
                "harness.timeline",
                "timeline ring overflowed; events dropped",
                &[("dropped", obs::log::Value::from(dropped))],
            );
            if let Some(live) = &live {
                live.with(|r| {
                    let g = r.gauge("timeline.dropped_events");
                    r.set_gauge(g, dropped as f64);
                });
            }
        }
        let text = obs::timeline::export().to_json();
        if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "timeline: {} events ({dropped} dropped) -> {dest}",
            obs::timeline::recorded(),
        );
    }
    if let Some(sampler) = sampler {
        let log = sampler.stop();
        if !log.stream_ok {
            eprintln!("warning: live-metrics stream write failed");
        }
        eprintln!(
            "live-metrics: {} snapshots ({} beyond the ring)",
            log.taken, log.dropped
        );
    }

    if let Some(n) = x.trace_last {
        tracer().disable();
        let events = tracer().last(n);
        eprintln!(
            "== trace: last {} of {} recorded events ==",
            events.len(),
            tracer().recorded()
        );
        for ev in &events {
            eprintln!("  {ev}");
        }
        let section = JsonValue::object()
            .with("recorded", tracer().recorded())
            .with(
                "events",
                JsonValue::Arr(events.iter().map(|e| e.to_json()).collect()),
            );
        report.add_section("trace", section);
    }
    report.add_section(
        "scheduler",
        JsonValue::object()
            .with("jobs", x.jobs as u64)
            .with("cells", cells as u64),
    );
    report.add_section("metrics", master.to_json());
    if x.hotpath {
        // Timed in-process, outside `experiments`, so bench-diff gates
        // never see machine-speed noise.
        let points = harness::measure_hotpath();
        out!("{}", harness::hotpath_text(&points));
        report.add_section("hotpath", harness::hotpath_json(&points));
    }
    for (name, section) in x.sections {
        report.add_section(&name, section);
    }

    if let Some(dest) = &x.json {
        let text = report.finish().to_json_pretty();
        if dest == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
    }

    obs::log::info(
        "harness.run",
        "run finished",
        &[("cells", obs::log::Value::from(cells as u64))],
    );
    if let Some(path) = journal {
        let records = obs::log::recorded();
        let write_errors = obs::log::disable();
        eprintln!("journal: {records} records -> {}", path.display());
        if write_errors > 0 {
            eprintln!(
                "warning: journal {}: {write_errors} write errors",
                path.display()
            );
        }
    }
}

fn main_record(args: Vec<String>) {
    let mut out: Option<String> = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut experiments = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--out needs a value (a file path)"),
                })
            }
            "--scale" => match parse_value(&a, it.next()) {
                Ok(v) => scale = v,
                Err(m) => usage_error(&m),
            },
            "--seed" => match parse_value(&a, it.next()) {
                Ok(v) => seed = v,
                Err(m) => usage_error(&m),
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown record option: {other}"))
            }
            other => experiments.push(other.to_string()),
        }
    }
    let Some(out) = out else {
        usage_error("record needs --out FILE");
    };
    let selected = select_experiments(&experiments);
    let mut profile = RunParams::profile_default().scaled(scale);
    let mut pipelinep = RunParams::pipeline_default().scaled(scale);
    profile.seed = seed;
    pipelinep.seed = seed;

    let mut registry = Registry::new();
    let rep = match record(&out, &selected, profile, pipelinep, scale, &mut registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot record {out}: {e}");
            std::process::exit(1);
        }
    };
    let mut t = Table::new(
        format!("Recorded {out} (seed {seed}, scale {scale})"),
        &["benchmark", "instructions"],
    );
    for (bench, n) in &rep.per_bench {
        t.row(vec![bench.to_string(), n.to_string()]);
    }
    t.row(vec!["total".into(), rep.records.to_string()]);
    out!("{}", t.render());
    outln!(
        "container: {} bytes ({:.2} bytes/inst, {:.1}x smaller than text)",
        rep.binary_bytes,
        rep.bytes_per_inst(),
        rep.compression_vs_text()
    );
    outln!(
        "encode: {:.0} inst/s, {:.1} MiB/s",
        rep.insts_per_sec,
        rep.mib_per_sec
    );
}

fn main_replay(args: Vec<String>) {
    let mut file: Option<String> = None;
    let mut json: Option<String> = None;
    let mut trace_last: Option<usize> = None;
    let mut log: Option<String> = None;
    let mut log_level = obs::log::Level::Info;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--json needs a value (a path or -)"),
                })
            }
            "--trace-last" => match parse_trace_last(&a, it.next()) {
                Ok(v) => trace_last = Some(v),
                Err(m) => usage_error(&m),
            },
            "--log" => {
                log = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--log needs a value (a journal path)"),
                })
            }
            "--log-level" => match parse_level(&a, it.next()) {
                Ok(v) => log_level = v,
                Err(m) => usage_error(&m),
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown replay option: {other}"))
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => usage_error(&format!("unexpected argument: {other}")),
        }
    }
    let Some(file) = file else {
        usage_error("replay needs a trace file");
    };
    if json.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }

    let mut registry = Registry::new();
    let plan = match open_replay(&file, &mut registry) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot replay {file}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "replaying {} (seed {}, scale {}): {}",
        plan.source.describe(),
        plan.seed,
        plan.scale,
        plan.experiments.join(" ")
    );
    execute(Execution {
        source: &plan.source,
        selected: &plan.experiments,
        profile: plan.profile,
        pipeline: plan.pipeline,
        seed: plan.seed,
        scale: plan.scale,
        // Replay streams the capture sequentially; parallel cells would
        // contend for the reader, so replay always runs single-worker.
        jobs: 1,
        json,
        trace_last,
        timeline: None,
        live_metrics: None,
        live_interval_ms: 250,
        hotpath: false,
        log,
        log_level,
        sections: vec![("tracefile".to_string(), registry.to_json())],
    });
}

fn main_explain(args: Vec<String>) {
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut jobs: Option<usize> = None;
    let mut json: Option<String> = None;
    let mut top = harness::explain::DEFAULT_TOP;
    let mut dump = false;
    let mut exp: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match parse_value(&a, it.next()) {
                Ok(v) => scale = v,
                Err(m) => usage_error(&m),
            },
            "--seed" => match parse_value(&a, it.next()) {
                Ok(v) => seed = v,
                Err(m) => usage_error(&m),
            },
            "--top" => match parse_value(&a, it.next()) {
                Ok(v) => top = v,
                Err(m) => usage_error(&m),
            },
            "--jobs" | "-j" => match parse_jobs(&a, it.next()) {
                Ok(v) => jobs = Some(v),
                Err(m) => usage_error(&m),
            },
            "--json" => {
                json = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--json needs a value (a path or -)"),
                })
            }
            "--dump-provenance" => dump = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("-j") && other.len() > 2 => {
                match parse_jobs("-j", Some(other[2..].to_string())) {
                    Ok(v) => jobs = Some(v),
                    Err(m) => usage_error(&m),
                }
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown explain option: {other}"))
            }
            other if exp.is_none() => exp = Some(other.to_string()),
            other => usage_error(&format!("unexpected argument: {other}")),
        }
    }
    let Some(exp) = exp else {
        usage_error("explain needs an experiment (fig13 or fig16)");
    };
    if json.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }

    let mut params = RunParams::pipeline_default().scaled(scale);
    params.seed = seed;
    let source = SyntheticSource::new(seed);
    let Some(plan) = harness::explain_plan(&exp, &source, params, top, dump) else {
        usage_error(&format!(
            "explain supports {}, not {exp}",
            harness::EXPLAIN_EXPERIMENTS.join(" and ")
        ));
    };

    let mut master = Registry::new();
    let mut section: Option<JsonValue> = None;
    run_plans(
        vec![plan],
        jobs.unwrap_or_else(default_jobs),
        &mut master,
        |res| {
            out!("{}", res.text);
            eprintln!("[{} took {:.1}s]\n", res.name, res.busy.as_secs_f64());
            section = Some(res.json);
        },
    );

    if let Some(dest) = &json {
        // The explain report carries no timing/scheduler sections by
        // design: every byte is worker-count invariant.
        let root = JsonValue::object()
            .with("schema", harness::explain::SCHEMA)
            .with("experiment", exp)
            .with("seed", seed)
            .with("scale", scale)
            .with("explain", section.take().expect("one plan emitted"));
        let text = root.to_json_pretty();
        if dest == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
    }
}

fn main_convert(args: Vec<String>) {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if positional.len() != 2 || args.len() != 2 {
        usage_error("convert takes exactly: convert IN OUT");
    }
    let (input, output) = (positional[0].clone(), positional[1].clone());
    match convert_any(&input, &output) {
        Ok(stats) => outln!(
            "converted {} instructions: {} text bytes <-> {} binary bytes",
            stats.records,
            stats.text_bytes,
            stats.binary_bytes
        ),
        Err(e) => {
            eprintln!("error: cannot convert {input}: {e}");
            std::process::exit(1);
        }
    }
}

/// `export-metrics`: run experiments and print the merged registry (plus
/// the span table) in Prometheus text exposition format. Tables go to
/// stderr; stdout carries only the exposition so it pipes cleanly into
/// scrape tooling — the same rendering a future serve daemon's `/metrics`
/// endpoint will return.
fn main_export_metrics(args: Vec<String>) {
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut jobs: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut experiments = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match parse_value(&a, it.next()) {
                Ok(v) => scale = v,
                Err(m) => usage_error(&m),
            },
            "--seed" => match parse_value(&a, it.next()) {
                Ok(v) => seed = v,
                Err(m) => usage_error(&m),
            },
            "--jobs" | "-j" => match parse_jobs(&a, it.next()) {
                Ok(v) => jobs = Some(v),
                Err(m) => usage_error(&m),
            },
            "--out" => {
                out = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--out needs a value (a file path)"),
                })
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("-j") && other.len() > 2 => {
                match parse_jobs("-j", Some(other[2..].to_string())) {
                    Ok(v) => jobs = Some(v),
                    Err(m) => usage_error(&m),
                }
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown export-metrics option: {other}"))
            }
            other => experiments.push(other.to_string()),
        }
    }
    // Stdout is the exposition; everything human-readable moves aside.
    TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    let selected = select_experiments(&experiments);
    let mut profile = RunParams::profile_default().scaled(scale);
    let mut pipelinep = RunParams::pipeline_default().scaled(scale);
    profile.seed = seed;
    pipelinep.seed = seed;
    let source = SyntheticSource::new(seed);
    let plans = selected
        .iter()
        .map(|exp| plan_for(exp, &source, profile, pipelinep))
        .collect();
    let mut master = Registry::new();
    run_plans(
        plans,
        jobs.unwrap_or_else(default_jobs),
        &mut master,
        |res| {
            out!("{}", res.text);
            eprintln!("[{} took {:.1}s]\n", res.name, res.busy.as_secs_f64());
        },
    );
    let text = obs::expose::prometheus(&master, &obs::span::snapshot());
    match &out {
        Some(dest) => {
            if let Err(e) = std::fs::write(dest, &text) {
                eprintln!("error: cannot write {dest}: {e}");
                std::process::exit(1);
            }
        }
        None => print!("{text}"),
    }
}

/// `bench-diff`: compare the `experiments` sections of two run reports,
/// print per-metric deltas, and exit 3 when any metric moved more than
/// the threshold — the regression gate behind committed `BENCH_*.json`
/// snapshots.
fn main_bench_diff(args: Vec<String>) {
    let mut threshold = harness::DEFAULT_THRESHOLD_PCT;
    let mut full = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match parse_value::<f64>(&a, it.next()) {
                Ok(v) if v.is_finite() && v >= 0.0 => threshold = v,
                Ok(_) => usage_error("--threshold: must be a finite, non-negative percentage"),
                Err(m) => usage_error(&m),
            },
            "--full" => full = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown bench-diff option: {other}"))
            }
            other => files.push(other.to_string()),
        }
    }
    if files.len() != 2 {
        usage_error("bench-diff takes exactly: bench-diff OLD.json NEW.json");
    }
    let load = |path: &str| -> JsonValue {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match JsonValue::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {path} is not valid JSON: {e}");
                std::process::exit(1);
            }
        }
    };
    let old = load(&files[0]);
    let new = load(&files[1]);
    let diff = match harness::diff_reports(&old, &new, threshold) {
        Ok(d) => d,
        Err(m) => {
            eprintln!("error: {m}");
            std::process::exit(1);
        }
    };
    print!("{}", diff.render(full));
    let breaches = diff.breaches();
    if breaches.is_empty() {
        println!(
            "OK: {} metrics within {:.2}% of {}",
            diff.rows.len(),
            threshold,
            files[0]
        );
    } else {
        println!(
            "FAIL: {} of {} metrics moved more than {:.2}%",
            breaches.len(),
            diff.rows.len(),
            threshold
        );
        std::process::exit(3);
    }
}

/// Converts in whichever direction the input's magic bytes call for.
fn convert_any(
    input: &str,
    output: &str,
) -> Result<tracefile::ConvertStats, Box<dyn std::error::Error>> {
    use std::io::{BufReader, BufWriter, Read};
    let mut head = [0u8; 8];
    let n = std::fs::File::open(input)?.read(&mut head)?;
    if n == 8 && head == tracefile::container::MAGIC {
        let mut r = tracefile::TraceReader::open(input)?;
        let mut w = BufWriter::new(std::fs::File::create(output)?);
        let stats = tracefile::binary_to_text(&mut r, &mut w)?;
        std::io::Write::flush(&mut w)?;
        Ok(stats)
    } else {
        let r = BufReader::new(std::fs::File::open(input)?);
        let mut w = tracefile::TraceWriter::create(output, tracefile::DEFAULT_CHUNK_CAP)?;
        let name = std::path::Path::new(input)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
            .to_string();
        let mut stats = tracefile::text_to_binary(r, &mut w, &name)?;
        w.finish()?;
        stats.binary_bytes = std::fs::metadata(output)?.len();
        Ok(stats)
    }
}

fn main_serve(args: Vec<String>) {
    let opts = match serve_cli::parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print_usage();
            return;
        }
        Err(msg) => usage_error(&msg),
    };
    if let Err(e) = serve_cli::run_serve(&opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn main_serve_client(args: Vec<String>) {
    let opts = match serve_cli::parse_serve_client_args(args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print_usage();
            return;
        }
        Err(msg) => usage_error(&msg),
    };
    if let Err(e) = serve_cli::run_serve_client(&opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// `logs FILE [--level L] [--target PREFIX] [--follow] [--json]`: read a
/// binary journal written by `--log` and pretty-print it (or emit one
/// JSON object per record). `--follow` keeps polling for appended
/// records, surviving rotation.
fn main_logs(args: Vec<String>) {
    let mut file: Option<String> = None;
    let mut level = obs::log::Level::Debug;
    let mut target: Option<String> = None;
    let mut follow = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => match parse_level(&a, it.next()) {
                Ok(v) => level = v,
                Err(m) => usage_error(&m),
            },
            "--target" => {
                target = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--target needs a value (a target prefix)"),
                })
            }
            "--follow" | "-f" => follow = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown logs option: {other}"))
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => usage_error(&format!("unexpected argument: {other}")),
        }
    }
    let Some(file) = file else {
        usage_error("logs needs a journal file");
    };
    let path = std::path::Path::new(&file);
    let keep = |r: &obs::log::OwnedRecord| {
        r.level as u8 >= level as u8 && target.as_deref().is_none_or(|t| r.target.starts_with(t))
    };
    let print = |r: &obs::log::OwnedRecord| {
        if json {
            println!("{}", r.to_json().to_json());
        } else {
            println!("{r}");
        }
    };

    if follow {
        // The tail starts at the header, so the first poll replays the
        // whole existing journal before settling into live updates.
        let mut tail = match obs::log::JournalTail::open(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot open {file}: {e}");
                std::process::exit(1);
            }
        };
        loop {
            match tail.poll() {
                Ok((records, warning)) => {
                    for r in &records {
                        if keep(r) {
                            print(r);
                        }
                    }
                    if let Some(w) = warning {
                        eprintln!("warning: {file}: {w}");
                    }
                }
                // Rotation renames the file before recreating it; a poll
                // landing in that window just waits for the new one.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!("error: {file}: {e}");
                    std::process::exit(1);
                }
            }
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    let outcome = match obs::log::read_journal(path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            std::process::exit(1);
        }
    };
    let mut shown = 0usize;
    for r in &outcome.records {
        if keep(r) {
            print(r);
            shown += 1;
        }
    }
    if let Some(w) = outcome.warning {
        eprintln!("warning: {file}: {w}");
    }
    eprintln!("{file}: {shown} of {} records shown", outcome.records.len());
}

/// `sweep --grid SPEC|@FILE --ckpt DIR [--workers N] [--jobs N] ...`:
/// expand a declarative parameter grid and run every cell across worker
/// processes, checkpointing each finished cell so an interrupted sweep
/// resumes where it left off. The merged report is byte-identical for
/// every worker/thread count and any interrupt/resume split.
fn main_sweep(args: Vec<String>) {
    let mut grid_arg: Option<String> = None;
    let mut ckpt: Option<String> = None;
    let mut workers: usize = 1;
    let mut jobs: Option<usize> = None;
    let mut pareto = false;
    let mut dry_run = false;
    let mut fresh = false;
    let mut out: Option<String> = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut log: Option<String> = None;
    let mut log_level = obs::log::Level::Info;
    let mut live_metrics: Option<String> = None;
    let mut live_interval_ms = 250u64;
    let mut timeline: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--grid" => {
                grid_arg = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--grid needs a value (a spec or @FILE)"),
                })
            }
            "--ckpt" => {
                ckpt = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--ckpt needs a value (a directory)"),
                })
            }
            "--workers" => match parse_jobs(&a, it.next()) {
                Ok(v) => workers = v,
                Err(m) => usage_error(&m),
            },
            "--jobs" => match parse_jobs(&a, it.next()) {
                Ok(v) => jobs = Some(v),
                Err(m) => usage_error(&m),
            },
            "--pareto" => pareto = true,
            "--dry-run" => dry_run = true,
            "--fresh" => fresh = true,
            "--out" => {
                out = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--out needs a value (a path or -)"),
                })
            }
            "--scale" => match parse_value(&a, it.next()) {
                Ok(v) => scale = v,
                Err(m) => usage_error(&m),
            },
            "--seed" => match parse_value(&a, it.next()) {
                Ok(v) => seed = v,
                Err(m) => usage_error(&m),
            },
            "--log" => {
                log = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--log needs a value (a path)"),
                })
            }
            "--log-level" => match parse_level(&a, it.next()) {
                Ok(v) => log_level = v,
                Err(m) => usage_error(&m),
            },
            "--live-metrics" => {
                live_metrics = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--live-metrics needs a value (a path or -)"),
                })
            }
            "--live-interval-ms" => match parse_value(&a, it.next()) {
                Ok(v) => live_interval_ms = v,
                Err(m) => usage_error(&m),
            },
            "--timeline" => {
                timeline = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--timeline needs a value (a path)"),
                })
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => usage_error(&format!("unknown sweep option: {other}")),
        }
    }
    let Some(grid_arg) = grid_arg else {
        usage_error("sweep needs --grid");
    };
    if dry_run && fresh {
        usage_error("--dry-run and --fresh are mutually exclusive");
    }
    let spec_text = if let Some(path) = grid_arg.strip_prefix('@') {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read grid file {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        grid_arg
    };
    let mut base = RunParams::profile_default().scaled(scale);
    base.seed = seed;
    let grid = match harness::GridSpec::parse(&spec_text, base) {
        Ok(g) => g,
        Err(m) => usage_error(&m),
    };
    if dry_run {
        print!("{}", harness::render_dry_run(&grid));
        return;
    }
    let Some(ckpt) = ckpt else {
        usage_error("sweep needs --ckpt (or --dry-run)");
    };
    if out.as_deref() == Some("-") || live_metrics.as_deref() == Some("-") {
        TABLES_TO_STDERR.store(true, Ordering::Relaxed);
    }

    let journal =
        match serve_cli::enable_journal(log.as_deref().map(std::path::Path::new), log_level) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    if timeline.is_some() {
        obs::timeline::enable(TIMELINE_CAPACITY);
        obs::timeline::set_thread_name("main");
    }
    let live = live_metrics.as_ref().map(|_| SharedRegistry::new());
    let sampler = live_metrics.as_ref().map(|dest| {
        let writer: Box<dyn std::io::Write + Send> = if dest == "-" {
            Box::new(std::io::stdout())
        } else {
            match std::fs::File::create(dest) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: cannot write {dest}: {e}");
                    std::process::exit(1);
                }
            }
        };
        Sampler::start(
            live.clone().expect("live registry exists"),
            Duration::from_millis(live_interval_ms),
            LIVE_RING_CAP,
            Some(writer),
        )
    });
    obs::log::info(
        "harness.sweep",
        "sweep started",
        &[
            ("cells", obs::log::Value::from(grid.cell_count())),
            ("workers", obs::log::Value::from(workers)),
            ("seed", obs::log::Value::from(seed)),
        ],
    );

    let dir = std::path::Path::new(&ckpt);
    if let Err(e) = harness::prepare_dir(dir, &grid, fresh) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    // Each worker process gets an even share of the machine unless --jobs
    // pins its thread count explicitly.
    let jobs = jobs.unwrap_or_else(|| (default_jobs() / workers).max(1));
    let completed = match harness::sweep_parent(dir, &grid, workers, jobs, live.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: sweep failed: {e}");
            std::process::exit(1);
        }
    };

    let (text, report) = harness::render_sweep(&grid, &completed, pareto, scale);
    out!("{}", text);
    if let Some(dest) = &out {
        let text = report.to_json_pretty();
        if dest == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(dest) = &timeline {
        obs::timeline::disable();
        let text = obs::timeline::export().to_json();
        if let Err(e) = std::fs::write(dest, text + "\n") {
            eprintln!("error: cannot write {dest}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "timeline: {} events ({} dropped) -> {dest}",
            obs::timeline::recorded(),
            obs::timeline::dropped(),
        );
    }
    if let Some(sampler) = sampler {
        let log = sampler.stop();
        if !log.stream_ok {
            eprintln!("warning: live-metrics stream write failed");
        }
        eprintln!(
            "live-metrics: {} snapshots ({} beyond the ring)",
            log.taken, log.dropped
        );
    }
    obs::log::info(
        "harness.sweep",
        "sweep finished",
        &[("cells", obs::log::Value::from(completed.len()))],
    );
    if let Some(path) = journal {
        let records = obs::log::recorded();
        let write_errors = obs::log::disable();
        eprintln!("journal: {records} records -> {}", path.display());
        if write_errors > 0 {
            eprintln!(
                "warning: journal {}: {write_errors} write errors",
                path.display()
            );
        }
    }
}

/// Hidden child-process entry point: `sweep-worker --ckpt DIR --worker K
/// --workers W --jobs J`. Spawned by `sweep`; everything it needs is in
/// the checkpoint directory. Exits when its parent dies (stdin EOF).
fn main_sweep_worker(args: Vec<String>) {
    let mut ckpt: Option<String> = None;
    let mut worker: Option<u32> = None;
    let mut workers: Option<u32> = None;
    let mut jobs = 1usize;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ckpt" => {
                ckpt = Some(match it.next() {
                    Some(v) => v,
                    None => usage_error("--ckpt needs a value (a directory)"),
                })
            }
            "--worker" => match parse_value(&a, it.next()) {
                Ok(v) => worker = Some(v),
                Err(m) => usage_error(&m),
            },
            "--workers" => match parse_value(&a, it.next()) {
                Ok(v) => workers = Some(v),
                Err(m) => usage_error(&m),
            },
            "--jobs" => match parse_jobs(&a, it.next()) {
                Ok(v) => jobs = v,
                Err(m) => usage_error(&m),
            },
            other => usage_error(&format!("unknown sweep-worker option: {other}")),
        }
    }
    let (Some(ckpt), Some(worker), Some(workers)) = (ckpt, worker, workers) else {
        usage_error("sweep-worker needs --ckpt, --worker, and --workers");
    };
    harness::sweep::spawn_orphan_watchdog();
    if let Err(e) = harness::run_sweep_worker(std::path::Path::new(&ckpt), worker, workers, jobs) {
        eprintln!("error: sweep worker {worker}: {e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    eprintln!(
        "usage: harness [--scale F] [--seed N] [--jobs N|-jN] [--json PATH|-]\n\
         \x20              [--trace-last N] [--timeline PATH]\n\
         \x20              [--live-metrics PATH|-] [--live-interval-ms N]\n\
         \x20              [--hotpath-bench] [--log PATH] [--log-level L] <experiment>...\n\
         \x20      harness record --out FILE [--scale F] [--seed N] <experiment>...\n\
         \x20      harness replay FILE [--json PATH|-] [--trace-last N]\n\
         \x20              [--log PATH] [--log-level L]\n\
         \x20      harness convert IN OUT\n\
         \x20      harness explain <fig13|fig16> [--scale F] [--seed N] [--jobs N|-jN]\n\
         \x20              [--json PATH|-] [--top N] [--dump-provenance]\n\
         \x20      harness export-metrics [--scale F] [--seed N] [--jobs N|-jN]\n\
         \x20              [--out PATH] <experiment>...\n\
         \x20      harness bench-diff OLD.json NEW.json [--threshold PCT] [--full]\n\
         \x20      harness serve (--socket PATH | --stdio | --selftest)\n\
         \x20              [--max-sessions N] [--queue-depth N] [--global-queue N]\n\
         \x20              [--scale F] [--seed N] [--log PATH] [--log-level L]\n\
         \x20      harness serve-client --socket PATH\n\
         \x20              [--trace FILE | --stream BENCH | --drift-probe]\n\
         \x20              [--session NAME] [--window N] [--warmup N] [--measure N]\n\
         \x20              [--scale F] [--seed N] [--corrupt-chunk N]\n\
         \x20              [--status] [--metrics] [--health] [--shutdown]\n\
         \x20      harness logs FILE [--level L] [--target PREFIX] [--follow] [--json]\n\
         \x20      harness sweep --grid SPEC|@FILE (--ckpt DIR | --dry-run)\n\
         \x20              [--workers N] [--jobs N] [--pareto] [--out PATH|-]\n\
         \x20              [--fresh] [--scale F] [--seed N] [--log PATH] [--log-level L]\n\
         \x20              [--live-metrics PATH|-] [--live-interval-ms N] [--timeline PATH]\n\
         experiments: fig1 fig8 fig9 fig10 fig12 fig13 fig16 fig18a fig18b\n\
         table2 fig19 ablate-queue ablate-filler ablate-confidence\n\
         ablate-depth prefetch limit all\n\
         --jobs runs experiment cells on N workers (default: all cores);\n\
         output is byte-identical for every worker count\n\
         --json writes a machine-readable run report (- for stdout)\n\
         --trace-last records pipeline events and dumps the final N\n\
         --timeline exports a Chrome trace-event timeline (open in Perfetto\n\
         or chrome://tracing): one track per worker, spans per cell\n\
         --live-metrics streams periodic delta-compressed NDJSON metric\n\
         snapshots while the run is going (- for stdout; tables move to\n\
         stderr); --live-interval-ms sets the period (default 250)\n\
         --hotpath-bench times the gdiff update hot path (closure vs\n\
         batched window) after the experiments and adds a `hotpath`\n\
         section to the --json report\n\
         record captures the instruction streams the named experiments\n\
         consume into a chunked, CRC-checked binary container; replay\n\
         re-runs them from the capture with identical results (always\n\
         single-worker); convert translates text traces to the container\n\
         and back (direction sniffed from the input's magic bytes);\n\
         explain re-runs a gdiff-vs-stride comparison with the prediction\n\
         provenance tap on and prints per-PC / distance / value-delay\n\
         offender tables (byte-identical for every --jobs value);\n\
         --dump-provenance includes the raw flight-recorder events;\n\
         export-metrics runs experiments and prints the merged registry\n\
         in Prometheus text format (stdout, or --out FILE);\n\
         bench-diff compares two --json run reports' experiments sections\n\
         and exits 3 when any metric moved more than --threshold percent\n\
         (default 5; --full lists unchanged metrics too);\n\
         serve runs the gdiff-serve/v1 prediction daemon on a Unix socket\n\
         (--stdio: one session over stdin/stdout; --selftest: record,\n\
         stream, and diff every benchmark against a one-shot run);\n\
         serve-client streams a recorded trace (--trace, one session per\n\
         stream) or a synthesized benchmark (--stream) to a daemon and\n\
         prints the final report JSON; --status/--metrics/--health/\n\
         --shutdown are daemon control requests; --drift-probe streams a\n\
         synthetic session that switches stride family mid-stream and\n\
         fails unless the daemon's drift detector catches it;\n\
         --corrupt-chunk flips one byte in chunk N before sending it\n\
         --log writes a structured binary journal of live events (admits,\n\
         kills, drift alarms, run milestones; rotated at 16 MiB) without\n\
         changing any deterministic output; --log-level gates it\n\
         (debug|info|warn|error, default info);\n\
         logs pretty-prints a journal (--json: one JSON object per\n\
         record; --follow: keep polling, surviving rotation);\n\
         sweep expands a declarative parameter grid (clauses like\n\
         'order=4,8;depth=1024,8192;threshold=0,4;delay=0,2;bench=all')\n\
         into one cell per (config x benchmark) and runs them across\n\
         --workers processes, each on --jobs threads, coordinating\n\
         through atomic cell claims in the --ckpt directory with\n\
         work stealing from stragglers' shard tails; every finished\n\
         cell is checkpointed (CRC-framed), so a killed sweep re-run\n\
         with the same --ckpt resumes, skipping completed cells; the\n\
         merged tables/report are byte-identical for every worker and\n\
         thread count and any interrupt/resume split; --pareto adds the\n\
         (gated accuracy x coverage vs table bits) frontier; --dry-run\n\
         prints the expansion without running; --fresh discards\n\
         checkpoints from a previous grid"
    );
}
