//! Throughput of every value predictor: one synchronous predict+update
//! step over a realistic mixed value stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdiff::GDiffPredictor;
use predictors::{
    Capacity, DfcmPredictor, FcmPredictor, HybridPredictor, LastNValuePredictor,
    LastValuePredictor, MarkovConfig, MarkovPredictor, PiPredictor, StridePredictor,
    ValuePredictor,
};
use workloads::Benchmark;

fn stream(n: usize) -> Vec<(u64, u64)> {
    Benchmark::Gcc
        .build(42)
        .filter(|i| i.produces_value())
        .take(n)
        .map(|i| (i.pc, i.value))
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let values = stream(10_000);
    let mut g = c.benchmark_group("predictor_step");
    g.throughput(Throughput::Elements(values.len() as u64));

    let mut cases: Vec<(&str, Box<dyn ValuePredictor>)> = vec![
        (
            "last_value",
            Box::new(LastValuePredictor::new(Capacity::Entries(8192))),
        ),
        (
            "last_4_value",
            Box::new(LastNValuePredictor::new(Capacity::Entries(8192), 4)),
        ),
        (
            "stride_2delta",
            Box::new(StridePredictor::new(Capacity::Entries(8192))),
        ),
        (
            "fcm_o4",
            Box::new(FcmPredictor::new(Capacity::Entries(8192), 4, 16)),
        ),
        (
            "dfcm_o4",
            Box::new(DfcmPredictor::new(Capacity::Entries(8192), 4, 16)),
        ),
        (
            "pi_global",
            Box::new(PiPredictor::new(Capacity::Entries(8192))),
        ),
        (
            "markov_64k",
            Box::new(MarkovPredictor::new(MarkovConfig {
                entries: 64 * 1024,
                ways: 4,
            })),
        ),
        (
            "hybrid_stride_dfcm",
            Box::new(HybridPredictor::new(
                StridePredictor::new(Capacity::Entries(8192)),
                DfcmPredictor::new(Capacity::Entries(8192), 4, 16),
                Capacity::Entries(8192),
            )),
        ),
        (
            "gdiff_q8",
            Box::new(GDiffPredictor::new(Capacity::Entries(8192), 8)),
        ),
        (
            "gdiff_q32",
            Box::new(GDiffPredictor::new(Capacity::Entries(8192), 32)),
        ),
    ];

    for (name, p) in cases.iter_mut() {
        g.bench_with_input(BenchmarkId::from_parameter(*name), &values, |b, values| {
            b.iter(|| {
                let mut hits = 0u64;
                for &(pc, v) in values {
                    if p.step(black_box(pc), black_box(v)) == Some(true) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
