//! One Criterion benchmark per paper exhibit: measures how long each
//! figure/table regeneration takes at a reduced scale (wall-clock cost of
//! the reproduction pipeline itself, one bench per table/figure family).
//!
//! The *results* of each exhibit are produced by the `harness` binary
//! (`cargo run -p harness --release -- <exp>`); these benches track the
//! cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use gdiff::GDiffPredictor;
use pipeline::{HgvqEngine, NoVp, PipelineConfig, Simulator};
use predictors::{Capacity, DfcmPredictor, StridePredictor, ValuePredictor};
use workloads::Benchmark;

const N: usize = 30_000;

fn profile_step(bench: Benchmark, p: &mut dyn ValuePredictor) -> u64 {
    let mut hits = 0;
    for i in bench.build(42).filter(|i| i.produces_value()).take(N) {
        if p.step(i.pc, i.value) == Some(true) {
            hits += 1;
        }
    }
    hits
}

fn bench_exhibits(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibit_regeneration");
    g.sample_size(10);

    // Figure 8 family: profile accuracy of the three predictors.
    g.bench_function("fig8_stride_cell", |b| {
        b.iter(|| {
            profile_step(
                Benchmark::Parser,
                &mut StridePredictor::new(Capacity::Unbounded),
            )
        })
    });
    g.bench_function("fig8_dfcm_cell", |b| {
        b.iter(|| {
            profile_step(
                Benchmark::Parser,
                &mut DfcmPredictor::new(Capacity::Unbounded, 4, 16),
            )
        })
    });
    g.bench_function("fig8_gdiff_cell", |b| {
        b.iter(|| {
            profile_step(
                Benchmark::Parser,
                &mut GDiffPredictor::new(Capacity::Unbounded, 8),
            )
        })
    });

    // Figure 9 family: bounded-table profile run.
    g.bench_function("fig9_8k_table_cell", |b| {
        b.iter(|| {
            profile_step(
                Benchmark::Gcc,
                &mut GDiffPredictor::new(Capacity::Entries(8192), 8),
            )
        })
    });

    // Figure 10 family: delayed profile run.
    g.bench_function("fig10_delay16_cell", |b| {
        b.iter(|| {
            profile_step(
                Benchmark::Twolf,
                &mut GDiffPredictor::with_delay(Capacity::Unbounded, 8, 16),
            )
        })
    });

    // Table 2 / Figures 12, 13, 16, 19 family: one pipeline run per cell.
    g.bench_function("table2_baseline_cell", |b| {
        b.iter(|| {
            Simulator::new(PipelineConfig::r10k(), Box::new(NoVp))
                .run(Benchmark::Gzip.build(42).take(N * 2), 3_000, N as u64)
                .ipc()
        })
    });
    g.bench_function("fig16_hgvq_cell", |b| {
        b.iter(|| {
            Simulator::new(
                PipelineConfig::r10k(),
                Box::new(HgvqEngine::paper_default()),
            )
            .run(Benchmark::Gzip.build(42).take(N * 2), 3_000, N as u64)
            .vp
            .coverage()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_exhibits);
criterion_main!(benches);
