//! Simulator throughput: simulated instructions per second per benchmark
//! and per value-prediction engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pipeline::{HgvqEngine, LocalEngine, NoVp, PipelineConfig, SgvqEngine, Simulator, VpEngine};
use workloads::Benchmark;

const INSTS: u64 = 50_000;

fn run(bench: Benchmark, engine: Box<dyn VpEngine>) -> f64 {
    Simulator::new(PipelineConfig::r10k(), engine)
        .run(bench.build(42).take(INSTS as usize * 2), 5_000, INSTS)
        .ipc()
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(INSTS));
    g.sample_size(10);
    for bench in [Benchmark::Gzip, Benchmark::Mcf] {
        g.bench_with_input(
            BenchmarkId::new("no_vp", bench.name()),
            &bench,
            |b, &bench| b.iter(|| run(bench, Box::new(NoVp))),
        );
        g.bench_with_input(
            BenchmarkId::new("local_stride", bench.name()),
            &bench,
            |b, &bench| b.iter(|| run(bench, Box::new(LocalEngine::stride_8k()))),
        );
        g.bench_with_input(
            BenchmarkId::new("gdiff_sgvq", bench.name()),
            &bench,
            |b, &bench| b.iter(|| run(bench, Box::new(SgvqEngine::paper_default()))),
        );
        g.bench_with_input(
            BenchmarkId::new("gdiff_hgvq", bench.name()),
            &bench,
            |b, &bench| b.iter(|| run(bench, Box::new(HgvqEngine::paper_default()))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
