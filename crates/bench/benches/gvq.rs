//! Micro-benchmarks of the global value queue and the gDiff table update,
//! including the queue-order ablation (the hardware-cost axis of the
//! paper's order-8 vs order-32 design choice).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdiff::{GDiffCore, GlobalValueQueue, HgvqPredictor, SgvqPredictor};
use predictors::Capacity;

fn bench_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("gvq_ops");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push", |b| {
        let mut q = GlobalValueQueue::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push(black_box(i))
        })
    });
    g.bench_function("back", |b| {
        let mut q = GlobalValueQueue::new(32);
        for i in 0..64 {
            q.push(i);
        }
        b.iter(|| q.back(black_box(17)))
    });
    g.bench_function("reserve_patch", |b| {
        let mut q = GlobalValueQueue::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let s = q.push_speculative(black_box(i));
            q.patch(s, i + 1)
        })
    });
    g.finish();
}

fn bench_gdiff_update_orders(c: &mut Criterion) {
    // The update computes `order` differences: cost scales with the order.
    let mut g = c.benchmark_group("gdiff_update_by_order");
    for order in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
                q.push(i * 7);
            })
        });
    }
    g.finish();
}

fn bench_split_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_phase_dispatch_writeback");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hgvq", |b| {
        let mut p =
            HgvqPredictor::with_stride_filler(Capacity::Entries(8192), 32, Capacity::Entries(8192));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = p.dispatch(black_box(0x80));
            p.writeback(0x80, &t, i * 4);
        })
    });
    g.bench_function("sgvq", |b| {
        let mut p = SgvqPredictor::new(Capacity::Entries(8192), 32, Capacity::Entries(8192));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = p.dispatch(black_box(0x80));
            p.complete(0x80, &t, i * 4);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_ops,
    bench_gdiff_update_orders,
    bench_split_phase
);
criterion_main!(benches);
