//! Trace-generation throughput for every benchmark model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::Benchmark;

const INSTS: usize = 100_000;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(INSTS as u64));
    for bench in Benchmark::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    bench
                        .build(42)
                        .take(INSTS)
                        .map(|i| i.value)
                        .fold(0u64, u64::wrapping_add)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
