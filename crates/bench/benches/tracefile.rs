//! Text format vs binary container: encode/decode throughput and size on
//! a ~100k-instruction trace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::Cursor;
use tracefile::{TraceReader, TraceWriter, DEFAULT_CHUNK_CAP};
use workloads::trace::{read_trace, write_trace};
use workloads::{Benchmark, DynInst};

const INSTS: usize = 100_000;

fn trace() -> Vec<DynInst> {
    Benchmark::Gcc.build(42).take(INSTS).collect()
}

fn binary_encode(insts: &[DynInst]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), DEFAULT_CHUNK_CAP).unwrap();
    w.begin_stream("gcc").unwrap();
    for i in insts {
        w.push(i).unwrap();
    }
    w.finish().unwrap()
}

fn text_encode(insts: &[DynInst]) -> Vec<u8> {
    let mut out = Vec::new();
    write_trace(&mut out, insts.iter().copied()).unwrap();
    out
}

fn bench_encode(c: &mut Criterion) {
    let insts = trace();
    let bin = binary_encode(&insts);
    let txt = text_encode(&insts);
    println!(
        "tracefile: {} insts -> binary {} B ({:.2} B/inst), text {} B ({:.2} B/inst), {:.1}x smaller",
        insts.len(),
        bin.len(),
        bin.len() as f64 / insts.len() as f64,
        txt.len(),
        txt.len() as f64 / insts.len() as f64,
        txt.len() as f64 / bin.len() as f64,
    );

    let mut g = c.benchmark_group("trace_encode");
    g.throughput(Throughput::Elements(INSTS as u64));
    g.bench_function("binary", |b| b.iter(|| binary_encode(&insts).len()));
    g.bench_function("text", |b| b.iter(|| text_encode(&insts).len()));
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let insts = trace();
    let bin = binary_encode(&insts);
    let txt = text_encode(&insts);

    let mut g = c.benchmark_group("trace_decode");
    g.throughput(Throughput::Elements(INSTS as u64));
    g.bench_function("binary", |b| {
        b.iter(|| {
            // Structural validation + full chunk decode, the replay path.
            let mut r = TraceReader::new(Cursor::new(&bin[..])).unwrap();
            r.verify().unwrap().records
        })
    });
    g.bench_function("text", |b| {
        b.iter(|| read_trace(Cursor::new(&txt[..])).fold(0usize, |n, r| n + r.map(|_| 1).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
