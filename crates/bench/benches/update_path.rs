//! The per-instruction hot path: GDiffCore update and GVQ push.
//!
//! These are the operations executed once per completing instruction, so
//! they bound simulator throughput. The update path is allocation-free:
//! difference vectors live inline in the table entry (`gdiff::MAX_ORDER`)
//! and the per-completion scratch is a stack array plus an availability
//! bitmask. `gdiff_update/order_*` is the acceptance series for hot-path
//! changes; `gvq/*` covers the queue half of the pair.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdiff::{GDiffCore, GlobalValueQueue};
use predictors::Capacity;

fn bench_gvq_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("gvq");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push", |b| {
        let mut q = GlobalValueQueue::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push(black_box(i))
        })
    });
    g.bench_function("iter_order_32", |b| {
        let mut q = GlobalValueQueue::new(32);
        for i in 0..64 {
            q.push(i * 3);
        }
        b.iter(|| q.iter().flatten().fold(0u64, u64::wrapping_add))
    });
    g.finish();
}

fn bench_gdiff_update(c: &mut Criterion) {
    // One update computes `order` differences against the queue, selects a
    // distance, and stores the vector — all without heap allocation.
    let mut g = c.benchmark_group("gdiff_update");
    g.throughput(Throughput::Elements(1));
    for order in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
                q.push(i * 7);
            })
        });
    }
    g.finish();
}

fn bench_gdiff_predict_update_round(c: &mut Criterion) {
    // The full per-instruction pair: predict at dispatch, update at
    // completion, queue push in between — the simulator's inner loop.
    let mut g = c.benchmark_group("gdiff_round");
    g.throughput(Throughput::Elements(1));
    for order in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let p = core.predict_with(black_box(0x40), |k| q.back(k));
                core.update_with(0x40, i * 7, |k| q.back(k));
                q.push(i * 7);
                black_box(p)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gvq_push,
    bench_gdiff_update,
    bench_gdiff_predict_update_round
);
criterion_main!(benches);
