//! The per-instruction hot path: GDiffCore update and GVQ push.
//!
//! These are the operations executed once per completing instruction, so
//! they bound simulator throughput. The update path is allocation-free:
//! difference vectors live inline in the table entry (`gdiff::MAX_ORDER`)
//! and the per-completion scratch is a stack array plus an availability
//! bitmask. `gdiff_update/order_*` is the acceptance series for hot-path
//! changes; `gvq/*` covers the queue half of the pair.
//!
//! The vectorization legs compare three formulations of the same update:
//! `gdiff_update` (the closure wrapper, one `back(k)` read per distance),
//! `gdiff_update_batched` (one `window` pass feeding the lane-parallel
//! `update_from_window` kernel — the production path inside the
//! predictors), and `gdiff_update_scalar_ref` (the retained pre-vectorized
//! scan in `gdiff::reference`, the equivalence oracle's cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdiff::reference::ReferenceCore;
use gdiff::{GDiffCore, GlobalValueQueue, MAX_ORDER};
use predictors::Capacity;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// System allocator wrapper counting every allocation, so the telemetry
/// overhead guard can assert the update path stays allocation-free even
/// with the taps armed.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bench_gvq_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("gvq");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push", |b| {
        let mut q = GlobalValueQueue::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push(black_box(i))
        })
    });
    g.bench_function("iter_order_32", |b| {
        let mut q = GlobalValueQueue::new(32);
        for i in 0..64 {
            q.push(i * 3);
        }
        b.iter(|| q.iter().flatten().fold(0u64, u64::wrapping_add))
    });
    g.finish();
}

/// Orders swept by the vectorization comparison legs: the paper's profile
/// order (8), the SGVQ order (32), and the two extremes of the lane grid.
const SWEEP_ORDERS: [usize; 4] = [4, 8, 32, 64];

fn bench_gdiff_update(c: &mut Criterion) {
    // One update computes `order` differences against the queue, selects a
    // distance, and stores the vector — all without heap allocation.
    let mut g = c.benchmark_group("gdiff_update");
    g.throughput(Throughput::Elements(1));
    for order in SWEEP_ORDERS {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
                q.push(i * 7);
            })
        });
    }
    g.finish();
}

fn bench_gdiff_update_batched(c: &mut Criterion) {
    // The production hot path: one window read, then the chunked
    // compare-and-store kernel over the packed availability mask.
    let mut g = c.benchmark_group("gdiff_update_batched");
    g.throughput(Throughput::Elements(1));
    for order in SWEEP_ORDERS {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            // Reused scratch, as in the predictors: unmasked lanes are
            // unspecified by contract, so no per-iteration re-zeroing.
            let mut window = [0u64; MAX_ORDER];
            b.iter(|| {
                i += 1;
                let avail = q.window(&mut window);
                core.update_from_window(black_box(0x40), black_box(i * 7), &window, avail);
                q.push(i * 7);
            })
        });
    }
    g.finish();
}

fn bench_gdiff_update_scalar_ref(c: &mut Criterion) {
    // The retained scalar formulation (equivalence oracle): allocating,
    // one closure call per distance. Not a production path; benched so the
    // vectorization win stays visible in one report.
    let mut g = c.benchmark_group("gdiff_update_scalar_ref");
    g.throughput(Throughput::Elements(1));
    for order in SWEEP_ORDERS {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = ReferenceCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
                q.push(i * 7);
            })
        });
    }
    g.finish();
}

fn bench_gdiff_predict_update_round(c: &mut Criterion) {
    // The full per-instruction pair: predict at dispatch, update at
    // completion, queue push in between — the simulator's inner loop.
    let mut g = c.benchmark_group("gdiff_round");
    g.throughput(Throughput::Elements(1));
    for order in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &order| {
            let mut core = GDiffCore::new(Capacity::Entries(8192), order);
            let mut q = GlobalValueQueue::new(order);
            for i in 0..order as u64 * 2 {
                q.push(i * 3);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let p = core.predict_with(black_box(0x40), |k| q.back(k));
                core.update_with(0x40, i * 7, |k| q.back(k));
                q.push(i * 7);
                black_box(p)
            })
        });
    }
    g.finish();
}

/// One timed burst of the order-8 update loop; returns the wall time.
fn order8_burst(iters: u64) -> Duration {
    let order = 8usize;
    let mut core = GDiffCore::new(Capacity::Entries(8192), order);
    let mut q = GlobalValueQueue::new(order);
    for i in 0..order as u64 * 2 {
        q.push(i * 3);
    }
    let t0 = Instant::now();
    for i in 1..=iters {
        core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
        q.push(i * 7);
    }
    black_box(&core);
    t0.elapsed()
}

/// Telemetry overhead guard for the hot path.
///
/// With the timeline armed and a sampler thread running against a shared
/// registry — the full `--timeline --live-metrics` configuration — the
/// order-8 update burst must (a) perform zero heap allocations and
/// (b) stay within 2% of the telemetry-off wall time. The taps sit at
/// cell/phase granularity, never inside the update, so any regression
/// here means an instrumentation site leaked into the per-instruction
/// loop.
fn bench_telemetry_overhead_guard(c: &mut Criterion) {
    // Bursts need to be long enough (hundreds of ms) that scheduler noise
    // averages out under the 2% budget; short bursts see ±5% jitter.
    const ITERS: u64 = 10_000_000;
    const TRIALS: usize = 7;

    // Full telemetry configuration: timeline armed plus a live sampler.
    // The 1-hour interval keeps sampler ticks (which allocate on their
    // own thread) out of the measured window, so the allocation count
    // isolates the update path itself.
    let shared = obs::SharedRegistry::new();
    let sampler = obs::Sampler::start(shared.clone(), Duration::from_secs(3600), 16, None);
    std::thread::sleep(Duration::from_millis(20)); // baseline snapshot done

    // Each trial runs off/on/off bursts and judges the *median of the
    // per-trial ratios*: bracketing cancels frequency-ramp and
    // cache-warming drift, and the median shrugs off a single preempted
    // burst that would poison a min-vs-min comparison. The two off bursts
    // also yield a same-code noise floor — on a machine whose jitter
    // exceeds the budget, the gate widens by the measured noise instead
    // of failing on scheduler luck.
    order8_burst(ITERS); // warm-up, untimed
    let (mut off, mut on) = (Duration::MAX, Duration::MAX);
    let mut ratios = Vec::with_capacity(TRIALS);
    let mut noises = Vec::with_capacity(TRIALS);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..TRIALS {
        obs::timeline::disable();
        let t_off1 = order8_burst(ITERS);
        obs::timeline::enable(1024);
        let t_on = order8_burst(ITERS);
        obs::timeline::disable();
        let t_off2 = order8_burst(ITERS);
        off = off.min(t_off1).min(t_off2);
        on = on.min(t_on);
        let mid = (t_off1.as_secs_f64() + t_off2.as_secs_f64()) / 2.0;
        ratios.push(t_on.as_secs_f64() / mid);
        noises.push((t_off2.as_secs_f64() / t_off1.as_secs_f64() - 1.0).abs());
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    noises.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_ratio = ratios[TRIALS / 2];
    let noise_floor = noises[TRIALS / 2];

    sampler.stop();
    obs::timeline::disable();

    // The loop allocates a handful of times at setup (table + queue per
    // trial), never per update: allow setup, reject per-iteration cost.
    let per_update = allocs as f64 / (2.0 * TRIALS as f64 * ITERS as f64);
    assert!(
        allocs < 1_000,
        "update path allocated {allocs} times with telemetry on ({per_update:.4}/update)"
    );

    let overhead = median_ratio - 1.0;
    let budget = 0.02 + noise_floor;
    println!(
        "telemetry overhead @ order 8: off {:.1} ns/update, on {:.1} ns/update \
         (median ratio {:+.2}%, noise floor {:.2}%, budget {:.2}%)",
        off.as_secs_f64() * 1e9 / ITERS as f64,
        on.as_secs_f64() * 1e9 / ITERS as f64,
        overhead * 100.0,
        noise_floor * 100.0,
        budget * 100.0
    );
    assert!(
        overhead < budget,
        "telemetry adds {:.2}% to the order-8 update path (budget {:.2}%)",
        overhead * 100.0,
        budget * 100.0
    );

    // Surface the guarded configuration in the criterion report too.
    let mut g = c.benchmark_group("gdiff_update_telemetry");
    g.throughput(Throughput::Elements(1));
    obs::timeline::enable(1024);
    g.bench_function("order_8_on", |b| {
        let order = 8usize;
        let mut core = GDiffCore::new(Capacity::Entries(8192), order);
        let mut q = GlobalValueQueue::new(order);
        for i in 0..order as u64 * 2 {
            q.push(i * 3);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            core.update_with(black_box(0x40), black_box(i * 7), |k| q.back(k));
            q.push(i * 7);
        })
    });
    g.finish();
    obs::timeline::disable();
}

criterion_group!(
    benches,
    bench_gvq_push,
    bench_gdiff_update,
    bench_gdiff_update_batched,
    bench_gdiff_update_scalar_ref,
    bench_gdiff_predict_update_round,
    bench_telemetry_overhead_guard
);
criterion_main!(benches);
