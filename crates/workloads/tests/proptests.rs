//! Property-based tests for the workload substrate: trace-format
//! round-trips and stream well-formedness.

use proptest::prelude::*;
use std::io::Cursor;
use workloads::trace::{format_inst, parse_line, read_trace, write_trace};
use workloads::{Benchmark, DynInst, OpClass};

/// A strategy covering every `OpClass` variant (including `IntDiv`, which
/// has no dedicated constructor) and every legal source-count shape
/// (0, 1 or 2 sources, packed left, as the text format canonicalizes).
pub fn arb_inst() -> impl Strategy<Value = DynInst> {
    (
        any::<u64>(),
        0u8..10,
        0u8..64,
        0u8..64,
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(pc, kind, r1, r2, value, mem, taken)| match kind {
            0 => DynInst::alu(pc, r1, [None, None], value),
            1 => DynInst::alu(pc, r1, [Some(r2), None], value),
            2 => DynInst::alu(pc, r1, [Some(r2), Some(r1)], value),
            3 => DynInst::mul(pc, r1, [Some(r2), Some(r1)], value),
            4 => DynInst {
                op: OpClass::IntDiv,
                ..DynInst::alu(pc, r1, [Some(r2), Some(r1)], value)
            },
            5 => DynInst::load(pc, r1, r2, mem, value),
            6 => DynInst::store(pc, r1, r2, mem),
            7 => DynInst::branch(pc, r1, taken, mem),
            8 => DynInst::branch(pc, r1, !taken, mem),
            _ => DynInst::jump(pc, mem),
        })
}

#[test]
fn arb_inst_reaches_every_op_class() {
    // The round-trip property below is only as strong as the generator's
    // coverage; pin that coverage so a refactor can't silently lose a
    // variant (`IntDiv` was historically missing).
    let strat = arb_inst();
    let mut seen = std::collections::HashSet::new();
    let mut rng = proptest::__case_rng("arb_inst_reaches_every_op_class", 0);
    for _ in 0..512 {
        seen.insert(std::mem::discriminant(&strat.generate(&mut rng).op));
    }
    assert_eq!(seen.len(), 7, "expected all 7 OpClass variants generated");
}

proptest! {
    /// Any well-formed instruction survives a serialize→parse round trip.
    #[test]
    fn trace_line_round_trips(inst in arb_inst()) {
        let line = format_inst(&inst);
        prop_assert_eq!(parse_line(&line).unwrap(), inst, "line was: {}", line);
    }

    /// Whole traces round-trip through the streaming reader/writer.
    #[test]
    fn trace_files_round_trip(insts in prop::collection::vec(arb_inst(), 0..200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, insts.iter().copied()).unwrap();
        let parsed: Vec<DynInst> = read_trace(Cursor::new(buf)).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(parsed, insts);
    }

    /// Every benchmark emits well-formed streams from any seed: word
    /// aligned PCs, sources/destinations within the register file, loads
    /// and stores carrying addresses, branches carrying targets.
    #[test]
    fn benchmark_streams_are_well_formed(seed in any::<u64>(), which in 0usize..10) {
        let bench = Benchmark::ALL[which];
        for inst in bench.build(seed).take(3_000) {
            prop_assert_eq!(inst.pc % 4, 0);
            if let Some(d) = inst.dst {
                prop_assert!(d < 64, "dst {d}");
            }
            for s in inst.srcs.iter().flatten() {
                prop_assert!(*s < 64, "src {s}");
            }
            if inst.is_mem() {
                prop_assert!(inst.mem_addr.unwrap() >= 0x1000_0000);
            }
            if inst.is_control() {
                prop_assert_eq!(inst.target % 4, 0);
            }
            prop_assert_eq!(inst.produces_value(), inst.dst.is_some());
        }
    }

    /// Two different seeds give different value streams (the models are
    /// genuinely stochastic), while the same seed is reproducible.
    #[test]
    fn seeds_control_the_stream(which in 0usize..10, s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let bench = Benchmark::ALL[which];
        let a: Vec<_> = bench.build(s1).take(2_000).collect();
        let b: Vec<_> = bench.build(s1).take(2_000).collect();
        prop_assert_eq!(&a, &b, "same seed, same stream");
        let c: Vec<_> = bench.build(s2).take(2_000).collect();
        prop_assert_ne!(a, c, "different seeds diverge");
    }
}
