//! The dynamic instruction record consumed by predictors and the pipeline.

use std::fmt;

/// Operation class of a dynamic instruction, with R10000-like latency
/// classes (Table 1: integer ALU 1 cycle, complex ops at R10000 latencies,
/// loads 1-cycle address generation + memory access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (6 cycles, MIPS R10000).
    IntMul,
    /// Integer divide (35 cycles, MIPS R10000).
    IntDiv,
    /// Memory load (1 cycle address generation + cache access).
    Load,
    /// Memory store (1 cycle address generation; retires without a value).
    Store,
    /// Conditional branch (1 cycle; resolves at execute).
    Branch,
    /// Unconditional jump/call/return (1 cycle; target from the BTB/RAS).
    Jump,
}

impl OpClass {
    /// Execution latency in cycles, excluding memory access time.
    pub fn latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Jump | OpClass::Store => 1,
            OpClass::Load => 1, // address generation; the cache adds the rest
            OpClass::IntMul => 6,
            OpClass::IntDiv => 35,
        }
    }
}

/// One dynamic instruction of a workload trace.
///
/// A trace-driven simulator knows each instruction's outcome up front: the
/// value it produced, the address it touched, the branch direction it took.
/// The *timing* of those events is what the pipeline model computes; the
/// predictors are trained on the recorded outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// The instruction's address (word aligned).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination architectural register, if the instruction produces a
    /// value.
    pub dst: Option<u8>,
    /// Source architectural registers (up to two).
    pub srcs: [Option<u8>; 2],
    /// The value produced (destination value; meaningless when `dst` is
    /// `None`).
    pub value: u64,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Whether a branch was taken (always `true` for jumps).
    pub taken: bool,
    /// Branch/jump target (0 when not a control instruction).
    pub target: u64,
}

impl DynInst {
    /// An ALU operation producing `value` into `dst`.
    pub fn alu(pc: u64, dst: u8, srcs: [Option<u8>; 2], value: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::IntAlu,
            dst: Some(dst),
            srcs,
            value,
            mem_addr: None,
            taken: false,
            target: 0,
        }
    }

    /// A multiply producing `value` into `dst`.
    pub fn mul(pc: u64, dst: u8, srcs: [Option<u8>; 2], value: u64) -> Self {
        DynInst {
            op: OpClass::IntMul,
            ..Self::alu(pc, dst, srcs, value)
        }
    }

    /// A load from `addr` (base register `base`) producing `value`.
    pub fn load(pc: u64, dst: u8, base: u8, addr: u64, value: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [Some(base), None],
            value,
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A store of register `data` to `addr` (base register `base`).
    pub fn store(pc: u64, data: u8, base: u8, addr: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Store,
            dst: None,
            srcs: [Some(data), Some(base)],
            value: 0,
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch on register `cond`.
    pub fn branch(pc: u64, cond: u8, taken: bool, target: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Branch,
            dst: None,
            srcs: [Some(cond), None],
            value: 0,
            mem_addr: None,
            taken,
            target,
        }
    }

    /// An unconditional jump (call/return) to `target`.
    pub fn jump(pc: u64, target: u64) -> Self {
        DynInst {
            pc,
            op: OpClass::Jump,
            dst: None,
            srcs: [None, None],
            value: 0,
            mem_addr: None,
            taken: true,
            target,
        }
    }

    /// Whether this instruction produces a register value — the population
    /// the paper's "all value producing instructions" metrics cover
    /// (integer operations and loads; stores and branches excluded).
    pub fn produces_value(&self) -> bool {
        self.dst.is_some()
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(self.op, OpClass::Branch | OpClass::Jump)
    }

    /// Whether this is a memory access.
    pub fn is_mem(&self) -> bool {
        self.mem_addr.is_some()
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x} {:?}", self.pc, self.op)?;
        if let Some(d) = self.dst {
            write!(f, " r{d} <- {:#x}", self.value)?;
        }
        if let Some(a) = self.mem_addr {
            write!(f, " @{a:#x}")?;
        }
        if self.is_control() {
            write!(
                f,
                " {} -> {:#x}",
                if self.taken { "T" } else { "N" },
                self.target
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_correctly() {
        let a = DynInst::alu(0x40, 3, [Some(1), Some(2)], 99);
        assert!(a.produces_value() && !a.is_mem() && !a.is_control());

        let l = DynInst::load(0x44, 4, 29, 0x7fff_0000, 5);
        assert!(l.produces_value() && l.is_mem());
        assert_eq!(l.mem_addr, Some(0x7fff_0000));

        let s = DynInst::store(0x48, 4, 29, 0x7fff_0000);
        assert!(!s.produces_value() && s.is_mem());

        let b = DynInst::branch(0x4c, 4, true, 0x40);
        assert!(!b.produces_value() && b.is_control());

        let j = DynInst::jump(0x50, 0x100);
        assert!(j.taken && j.is_control());
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert_eq!(OpClass::IntMul.latency(), 6);
        assert_eq!(OpClass::IntDiv.latency(), 35);
        assert_eq!(OpClass::Load.latency(), 1);
    }

    #[test]
    fn display_is_informative() {
        let l = DynInst::load(0x44, 4, 29, 0x1000, 5);
        let s = format!("{l}");
        assert!(s.contains("Load") && s.contains("0x1000"));
    }
}
