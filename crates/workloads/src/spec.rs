//! Per-benchmark program specifications.
//!
//! Each SPECint2000 benchmark from the paper is modelled as a mixture of
//! kernels whose weights were chosen so the benchmark's *qualitative*
//! predictability profile matches the paper's Figure 8 / Figure 16
//! characterization (see DESIGN.md §4 for the substitution argument):
//!
//! * **mcf** — pointer-chasing over a multi-megabyte bump-allocated arena:
//!   highest gDiff accuracy, massive D-cache miss rate;
//! * **parser / twolf** — spill/fill heavy: the largest gDiff-over-local
//!   gaps (the paper's +34% benchmarks);
//! * **gap** — long save/restore chains beyond a queue of order 8 but
//!   within order 32: the lowest overall predictability with the
//!   queue-size-sensitive recovery;
//! * **bzip2 / gzip** — buffer sweeps and counters: stride friendly;
//! * **gcc / perl / vortex / vpr** — diverse mixes with calls, periodic
//!   string processing, and data-dependent branches.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::kernels::{
    ArrayData, ArrayWalkKernel, BranchyKernel, CallKernel, CorrelationKernel, FillerKind, HardKind,
    Indexing, Kernel, KernelSlot, LoopKernel, PayloadKind, PeriodicKernel, PointerChaseKernel,
    RandomKernel, SaveRestoreKernel,
};
use crate::Program;

/// The ten SPECint2000 benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bzip2,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Perl,
    Twolf,
    Vortex,
    Vpr,
}

impl Benchmark {
    /// All benchmarks, in the paper's (alphabetical) presentation order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Bzip2,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Perl,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
    ];

    /// The benchmark's SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Gap => "gap",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Perl => "perl",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Builds the benchmark's synthetic program, seeded for determinism.
    pub fn build(self, seed: u64) -> Program {
        let mut b = Builder::new(seed);
        match self {
            Benchmark::Bzip2 => {
                let lp = b.add(|s, _| {
                    Box::new(LoopKernel::new(s, &[(0, 4), (640, 4), (9, 4)], 40).padded(5))
                });
                let a1 = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            2048,
                            8,
                            ArrayData::Affine {
                                base: 0x2_0000,
                                delta: 8,
                            },
                            Indexing::Sweep,
                            40,
                        )
                        .padded(4),
                    )
                });
                let a2 = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            512,
                            8,
                            ArrayData::Hashed,
                            Indexing::Sweep,
                            2,
                        )
                        .padded(4),
                    )
                });
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        4,
                        &[4, 12],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 4, 24)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 8, HardKind::PhasedStride)));
                b.schedule(&[lp, a1, sp, co, a2, rn, sr, sp, co, rn, sr, sp, rn]);
                b.build(0.03)
            }
            Benchmark::Gap => {
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 14, HardKind::Generational)));
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 8), (32, 8)], 20).padded(5)));
                let ph =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 6, HardKind::PhasedStride)));
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 4, 32)));
                b.schedule(&[sr, lp, ph, rn, sr, rn]);
                b.build(0.02)
            }
            Benchmark::Gcc => {
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 4), (96, 4)], 32).padded(5)));
                let ca = b.add(|s, _| Box::new(CallKernel::new(s, 4, true)));
                let ce = b.add(|s, _| Box::new(CallKernel::new(s, 3, false)));
                let pe = b.add(|s, _| Box::new(PeriodicKernel::new(s, &[3, 17, 3, 90, 41], 1)));
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        5,
                        &[8],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let ar = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            2048,
                            8,
                            ArrayData::Evolving,
                            Indexing::Scattered,
                            5,
                        )
                        .padded(4),
                    )
                });
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 2, 32)));
                let br = b.add(|s, _| Box::new(BranchyKernel::new(s, 0.55)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 8, HardKind::PhasedStride)));
                b.schedule(&[lp, ca, pe, sp, co, ce, ar, br, sr, sp, co, sr, sp, rn]);
                b.build(0.08)
            }
            Benchmark::Gzip => {
                let lp = b.add(|s, _| {
                    Box::new(LoopKernel::new(s, &[(0, 2), (16, 2), (5, 2)], 40).padded(5))
                });
                let a1 = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            4096,
                            4,
                            ArrayData::Affine { base: 7, delta: 4 },
                            Indexing::Sweep,
                            40,
                        )
                        .padded(4),
                    )
                });
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        3,
                        &[4, 12],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 4, 16)));
                let pe = b.add(|s, _| Box::new(PeriodicKernel::new(s, &[258, 4, 258, 10, 2], 1)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 18, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 7, HardKind::PhasedStride)));
                b.schedule(&[lp, a1, sp, co, rn, pe, sr, sp, co, sr, sp, rn, rn]);
                b.build(0.04)
            }
            Benchmark::Mcf => {
                let p1 = b.add(|s, rng| {
                    Box::new(
                        PointerChaseKernel::new(
                            s,
                            120_000,
                            40,
                            0.25,
                            PayloadKind::CoAllocated,
                            rng,
                        )
                        .with_hops(128)
                        .padded(4)
                        .with_payload_churn(0.25),
                    )
                });
                let p2 = b.add(|s, rng| {
                    Box::new(
                        PointerChaseKernel::new(s, 80_000, 64, 0.30, PayloadKind::CoAllocated, rng)
                            .with_hops(96)
                            .padded(4)
                            .with_payload_churn(0.35),
                    )
                });
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        4,
                        &[],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 4), (40, 4)], 12).padded(5)));
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 2, 32)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 8, HardKind::PhasedStride)));
                b.schedule(&[p1, co, sp, p2, sr, lp, p1, co, sp, sr, rn, sp, sr]);
                b.build(0.02)
            }
            Benchmark::Parser => {
                let c1 = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        3,
                        &[4, 24],
                        HardKind::NoisyRange,
                        FillerKind::Strided,
                    ))
                });
                let c2 = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        5,
                        &[8],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 18, HardKind::NoisyRange)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 7, HardKind::PhasedStride)));
                let ca = b.add(|s, _| Box::new(CallKernel::new(s, 4, true)));
                let pe =
                    b.add(|s, _| Box::new(PeriodicKernel::new(s, &[115, 111, 114, 100, 95], 2)));
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 8), (24, 8)], 12).padded(5)));
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 1, 16)));
                b.schedule(&[c1, ca, pe, sp, c2, lp, c1, sr, sp, rn, sp]);
                b.build(0.06)
            }
            Benchmark::Perl => {
                let ca = b.add(|s, _| Box::new(CallKernel::new(s, 5, true)));
                let cb = b.add(|s, _| Box::new(CallKernel::new(s, 3, false)));
                let p1 = b
                    .add(|s, _| Box::new(PeriodicKernel::new(s, &[36, 105, 102, 36, 123, 125], 1)));
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        3,
                        &[4],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 1), (8, 1)], 16).padded(5)));
                let ar = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            1024,
                            8,
                            ArrayData::Evolving,
                            Indexing::Scattered,
                            3,
                        )
                        .padded(4),
                    )
                });
                let br = b.add(|s, _| Box::new(BranchyKernel::new(s, 0.6)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 7, HardKind::PhasedStride)));
                b.schedule(&[ca, p1, sp, co, cb, lp, ar, sr, sp, co, sr, sp, br]);
                b.build(0.07)
            }
            Benchmark::Twolf => {
                let c1 = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        4,
                        &[4, 12],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let c2 = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        6,
                        &[8],
                        HardKind::Generational,
                        FillerKind::Random,
                    ))
                });
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 7, HardKind::PhasedStride)));
                let ca = b.add(|s, _| Box::new(CallKernel::new(s, 6, true)));
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 16), (64, 16)], 10).padded(5)));
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 2, 28)));
                let br = b.add(|s, _| Box::new(BranchyKernel::new(s, 0.5)));
                b.schedule(&[c1, ca, sp, c2, lp, sr, sp, rn, sp, br]);
                b.build(0.05)
            }
            Benchmark::Vortex => {
                let ca = b.add(|s, _| Box::new(CallKernel::new(s, 4, false)));
                let cb = b.add(|s, _| Box::new(CallKernel::new(s, 4, true)));
                let a1 = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            1024,
                            16,
                            ArrayData::Affine {
                                base: 0x4000,
                                delta: 16,
                            },
                            Indexing::Sweep,
                            36,
                        )
                        .padded(4),
                    )
                });
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        6,
                        &[8, 16],
                        HardKind::Generational,
                        FillerKind::Strided,
                    ))
                });
                let pe = b.add(|s, _| Box::new(PeriodicKernel::new(s, &[1, 12, 1, 44], 1)));
                let lp = b.add(|s, _| {
                    Box::new(LoopKernel::new(s, &[(0, 4), (100, 4), (3, 4)], 32).padded(5))
                });
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 18, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 8, HardKind::PhasedStride)));
                b.schedule(&[ca, a1, sp, co, cb, pe, lp, sr, sp, co, sr, sp, ca]);
                b.build(0.04)
            }
            Benchmark::Vpr => {
                let lp =
                    b.add(|s, _| Box::new(LoopKernel::new(s, &[(0, 4), (28, 4)], 32).padded(5)));
                let a1 = b.add(|s, _| {
                    Box::new(
                        ArrayWalkKernel::with_burst(
                            s,
                            4096,
                            8,
                            ArrayData::Evolving,
                            Indexing::Scattered,
                            4,
                        )
                        .padded(4),
                    )
                });
                let co = b.add(|s, _| {
                    Box::new(CorrelationKernel::new(
                        s,
                        4,
                        &[8],
                        HardKind::PhasedStride,
                        FillerKind::Strided,
                    ))
                });
                let rn = b.add(|s, _| Box::new(RandomKernel::new(s, 2, 24)));
                let br = b.add(|s, _| Box::new(BranchyKernel::new(s, 0.45)));
                let sr =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 20, HardKind::Generational)));
                let sp =
                    b.add(|s, _| Box::new(SaveRestoreKernel::new(s, 7, HardKind::PhasedStride)));
                b.schedule(&[lp, a1, sp, co, rn, sr, sp, co, sr, sp, br, lp]);
                b.build(0.05)
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Incrementally assembles a [`Program`], assigning kernel slots.
struct Builder {
    sites: Vec<Box<dyn Kernel>>,
    schedule: Vec<usize>,
    rng: SmallRng,
    seed: u64,
}

impl Builder {
    fn new(seed: u64) -> Self {
        Builder {
            sites: Vec::new(),
            schedule: Vec::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00),
            seed,
        }
    }

    fn add(&mut self, make: impl FnOnce(KernelSlot, &mut SmallRng) -> Box<dyn Kernel>) -> usize {
        let slot = KernelSlot::for_site(self.sites.len());
        let k = make(slot, &mut self.rng);
        self.sites.push(k);
        self.sites.len() - 1
    }

    fn schedule(&mut self, order: &[usize]) {
        self.schedule.extend_from_slice(order);
    }

    fn build(self, skip_prob: f64) -> Program {
        Program::new(self.sites, self.schedule, skip_prob, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_builds_and_streams() {
        for b in Benchmark::ALL {
            let trace: Vec<_> = b.build(1).take(2000).collect();
            assert_eq!(trace.len(), 2000, "{b}");
            let vp = trace.iter().filter(|i| i.produces_value()).count();
            assert!(vp > 500, "{b} must produce values: {vp}");
            let branches = trace.iter().filter(|i| i.is_control()).count();
            assert!(branches > 50, "{b} must have control flow: {branches}");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = Benchmark::Mcf.build(9).take(1000).collect();
        let b: Vec<_> = Benchmark::Mcf.build(9).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mcf_touches_a_large_footprint() {
        use std::collections::HashSet;
        let trace: Vec<_> = Benchmark::Mcf.build(1).take(200_000).collect();
        let lines: HashSet<u64> = trace
            .iter()
            .filter_map(|i| i.mem_addr)
            .map(|a| a / 64)
            .collect();
        // 64 KB cache = 1024 lines; mcf must touch far more.
        assert!(lines.len() > 10_000, "mcf footprint: {} lines", lines.len());
    }

    #[test]
    fn gzip_fits_mostly_in_cache() {
        use std::collections::HashSet;
        let trace: Vec<_> = Benchmark::Gzip.build(1).take(200_000).collect();
        let lines: HashSet<u64> = trace
            .iter()
            .filter_map(|i| i.mem_addr)
            .map(|a| a / 64)
            .collect();
        assert!(lines.len() < 2048, "gzip footprint: {} lines", lines.len());
    }
}
