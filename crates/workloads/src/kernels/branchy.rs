//! Data-dependent branch kernel: the execution-variation stressor.

use rand::rngs::SmallRng;
use rand::Rng;

use super::{Kernel, KernelSlot};
use crate::DynInst;

/// Emits a short compare-and-branch block whose direction is random with a
/// configurable bias.
///
/// In the §4 pipeline experiments, branch mispredictions are one of the two
/// sources of execution variation that disturb the speculative global value
/// queue; this kernel controls how much of that variation a benchmark
/// exhibits.
#[derive(Debug)]
pub struct BranchyKernel {
    slot: KernelSlot,
    taken_prob: f64,
    counter: u64,
}

impl BranchyKernel {
    /// Creates a kernel whose branch is taken with probability
    /// `taken_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `taken_prob` is not in `0.0..=1.0`.
    pub fn new(slot: KernelSlot, taken_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&taken_prob), "probability");
        BranchyKernel {
            slot,
            taken_prob,
            counter: 0,
        }
    }
}

impl Kernel for BranchyKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        self.counter += 1;
        let taken = rng.gen_bool(self.taken_prob);
        // the comparison operand (a value-producing ALU op)
        out.push(DynInst::alu(
            s.pc(0),
            s.reg(0),
            [Some(s.reg(0)), None],
            self.counter,
        ));
        out.push(DynInst::branch(s.pc(1), s.reg(0), taken, s.pc(4)));
        // fall-through work on the not-taken path
        if !taken {
            out.push(DynInst::alu(
                s.pc(2),
                s.reg(1),
                [Some(s.reg(0)), None],
                self.counter * 2,
            ));
            out.push(DynInst::jump(s.pc(3), s.pc(4)));
        }
    }

    fn name(&self) -> &'static str {
        "branchy"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::run_kernel;
    use super::*;

    #[test]
    fn taken_rate_follows_probability() {
        let mut k = BranchyKernel::new(KernelSlot::for_site(0), 0.7);
        let trace = run_kernel(&mut k, 2000);
        let branches: Vec<bool> = trace
            .iter()
            .filter(|i| i.op == crate::OpClass::Branch)
            .map(|i| i.taken)
            .collect();
        let rate = branches.iter().filter(|&&t| t).count() as f64 / branches.len() as f64;
        assert!((rate - 0.7).abs() < 0.05, "{rate}");
    }

    #[test]
    fn not_taken_path_emits_extra_work() {
        let mut k = BranchyKernel::new(KernelSlot::for_site(0), 0.0);
        let trace = run_kernel(&mut k, 3);
        // always not-taken: alu + branch + alu + jump per invocation
        assert_eq!(trace.len(), 12);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_kernel(&mut BranchyKernel::new(KernelSlot::for_site(0), 0.5), 50);
        let b = run_kernel(&mut BranchyKernel::new(KernelSlot::for_site(0), 0.5), 50);
        assert_eq!(a, b);
    }
}
