//! The spill/fill and define-use kernel: the paper's core global-stride
//! idiom (Figures 2 and 3).

use rand::rngs::SmallRng;
use rand::Rng;

use super::{mix64, Kernel, KernelSlot};
use crate::DynInst;

/// How the hard-to-predict *define* value evolves between invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardKind {
    /// Generational: `v' = mix64(v)` — incompressible (the gap benchmark's
    /// "hard-to-predict generational values").
    Generational,
    /// A bounded random walk, like the parser value sequence of Figure 1:
    /// noisy values within a slowly narrowing dynamic range.
    NoisyRange,
    /// A multi-phase stride: constant stride that switches occasionally
    /// ("phased multi-stride", §7).
    PhasedStride,
}

/// What the instructions between the define and its uses produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillerKind {
    /// Constant values (easy for every predictor).
    Constant,
    /// Per-slot strided counters (easy locally, easy globally).
    Strided,
    /// Fresh random values (hard for everyone).
    Random,
}

/// The define → spill → … → fill → use idiom:
///
/// ```text
/// defA | defB: rA = <hard value>    // one of two correlated producers
/// spill: store rA -> [stack slot]   //   (the two paths of Figure 2)
///        <gap filler instructions>
/// fill:  rB = load [stack slot]     // value == def's value (distance gap+1)
/// use:   rC = rB + c                // value == def's value + c
/// ```
///
/// The fill and use instructions are the paper's showcase: near-zero local
/// predictability, perfect *global stride* predictability at a constant
/// distance. The `gap` parameter positions that distance relative to the
/// GVQ order — a gap beyond the queue order reproduces the gap benchmark's
/// q=8 failure / q=32 recovery.
///
/// As in Figure 2, the reload is fed by **two** different defining
/// instructions on two control paths (chosen per invocation). The paths
/// have equal lengths, so the global correlation distance is
/// path-independent; but the reload's *local* value sequence is a merge of
/// two streams, which is what defeats local context predictors in real
/// spill/fill code.
#[derive(Debug)]
pub struct CorrelationKernel {
    slot: KernelSlot,
    gap: usize,
    use_offsets: Vec<u64>,
    hard: HardKind,
    filler: FillerKind,
    values: [u64; 2],
    fillers: Vec<u64>,
    phase_strides: [u64; 2],
    iter: u64,
    depth: u64,
    dir: i64,
}

impl CorrelationKernel {
    /// Creates a correlation kernel.
    ///
    /// * `gap` — number of filler value-producers between define and fill;
    /// * `use_offsets` — one `use` instruction per offset, producing
    ///   `fill + offset`;
    /// * `hard` / `filler` — value characters (see the enums).
    ///
    /// # Panics
    ///
    /// Panics if `gap > 64` or `use_offsets.len() > 4`.
    pub fn new(
        slot: KernelSlot,
        gap: usize,
        use_offsets: &[u64],
        hard: HardKind,
        filler: FillerKind,
    ) -> Self {
        assert!(gap <= 64, "gap too large");
        assert!(use_offsets.len() <= 4, "at most 4 uses");
        CorrelationKernel {
            slot,
            gap,
            use_offsets: use_offsets.to_vec(),
            hard,
            filler,
            values: [0x1234_5678, 0x9abc_def0],
            fillers: vec![0; gap],
            phase_strides: [24, 40],
            iter: 0,
            depth: 6,
            dir: 1,
        }
    }

    /// The configured define→fill gap.
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// PC of the fill (reload) instruction.
    pub fn fill_pc(&self) -> u64 {
        self.slot.pc(3 + self.gap as u64)
    }

    /// PCs of the two defining instructions.
    pub fn def_pcs(&self) -> [u64; 2] {
        [self.slot.pc(0), self.slot.pc(1)]
    }

    fn next_hard(&mut self, path: usize, rng: &mut SmallRng) -> u64 {
        self.values[path] = match self.hard {
            HardKind::Generational => mix64(self.values[path]),
            HardKind::NoisyRange => {
                // Values like Figure 1: multiples of 24 within a range that
                // narrows as the run proceeds.
                let range = 1000u64.saturating_sub(self.iter / 8).max(64);
                (rng.gen_range(0..range) / 24) * 24
            }
            HardKind::PhasedStride => {
                if self.iter % 61 == 60 {
                    self.phase_strides[path] = rng.gen_range(1..6) * 8;
                }
                self.values[path].wrapping_add(self.phase_strides[path])
            }
        };
        self.values[path]
    }
}

impl Kernel for CorrelationKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        let (r_def, r_sp, r_fill) = (s.reg(0), s.reg(6), s.reg(1));
        // The stack frame moves with call depth (a random walk), as real
        // stacks do: spill-slot addresses are locally irregular but keep
        // their intra-frame structure.
        self.depth = {
            // sticky random walk: call depth trends in one direction for a
            // while (phasic call behaviour), reversing rarely
            let d = self.depth as i64
                + if rng.gen_bool(0.85) {
                    self.dir
                } else {
                    self.dir = -self.dir;
                    self.dir
                };
            d.clamp(0, 12) as u64
        };
        let stack = s.mem_base + 0x8000 + self.depth * 64;

        // def: one of the two correlated producers (two control paths).
        let path = (rng.gen::<u8>() & 1) as usize;
        let v = self.next_hard(path, rng);
        out.push(DynInst::alu(
            s.pc(path as u64),
            r_def,
            [Some(r_def), None],
            v,
        ));
        // spill (register pressure forces v to memory — Figure 2).
        out.push(DynInst::store(s.pc(2), r_def, r_sp, stack));
        let mut pc = 3u64;
        // gap fillers, each its own static instruction.
        for i in 0..self.gap {
            let fv = match self.filler {
                FillerKind::Constant => 7,
                FillerKind::Strided => {
                    // All fillers advance by the same stride (like the
                    // address computations of one loop body), so adjacent
                    // fillers also correlate globally at distance 1.
                    self.fillers[i] = self.fillers[i].wrapping_add(8);
                    self.fillers[i].wrapping_add(1000 * i as u64)
                }
                FillerKind::Random => rng.gen(),
            };
            let r = s.reg(2 + (i % 3) as u8);
            out.push(DynInst::alu(s.pc(pc), r, [Some(r), None], fv));
            pc += 1;
        }
        // fill: reload of the spilled value.
        out.push(DynInst::load(s.pc(pc), r_fill, r_sp, stack, v));
        pc += 1;
        // deref: the reloaded value is a pointer — dereference it. The
        // address scatters over a multi-megabyte region, so this load
        // often misses; predicting the fill's value at dispatch lets the
        // deref issue immediately and overlap the miss (§7's mechanism).
        let deref_addr = s.mem_base + 0x10_0000 + (v.wrapping_mul(0x9E3779B9) & 0x3f_fff8);
        out.push(DynInst::load(
            s.pc(pc),
            s.reg(7),
            r_fill,
            deref_addr,
            mix64(v),
        ));
        pc += 1;
        // uses: value + constant (Figure 3's "explicit use").
        for (i, off) in self.use_offsets.iter().enumerate() {
            let r = s.reg(5);
            out.push(DynInst::alu(
                s.pc(pc + i as u64),
                r,
                [Some(r_fill), None],
                v.wrapping_add(*off),
            ));
        }
        pc += self.use_offsets.len() as u64;
        // loop-back branch on the reloaded value (Figure 2's bne).
        out.push(DynInst::branch(s.pc(pc), r_fill, v != 0, s.pc(0)));
        self.iter += 1;
    }

    fn name(&self) -> &'static str {
        "correlation"
    }
}

/// Bulk save/restore: `k` hard values are defined back-to-back, then
/// re-produced (reloaded) in the same order — so *every* restore sits at
/// global distance exactly `k` from its define.
///
/// This is the "long computation chain" shape of the gap benchmark (§3):
/// with `k` larger than the GVQ order none of the restores is predictable,
/// and growing the queue from 8 to 32 recovers them all at once — the
/// paper's 40% → 59.7% jump.
#[derive(Debug)]
pub struct SaveRestoreKernel {
    slot: KernelSlot,
    k: usize,
    hard: HardKind,
    /// One value bank per control path, so the restores' local sequences
    /// are a merge of three streams (see [`CorrelationKernel`]; three call
    /// sites keep the merged stride alphabet wide enough to defeat
    /// context predictors).
    values: [Vec<u64>; 3],
    phase_strides: [u64; 3],
    iter: u64,
    depth: u64,
    dir: i64,
}

impl SaveRestoreKernel {
    /// Creates a bulk save/restore of `k` values.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or greater than 48.
    pub fn new(slot: KernelSlot, k: usize, hard: HardKind) -> Self {
        assert!((1..=48).contains(&k), "k in 1..=48");
        SaveRestoreKernel {
            slot,
            k,
            hard,
            values: [
                (0..k as u64).map(mix64).collect(),
                (0..k as u64).map(|i| mix64(i ^ 0xAAAA)).collect(),
                (0..k as u64).map(|i| mix64(i ^ 0x5555)).collect(),
            ],
            phase_strides: [16, 32, 48],
            iter: 0,
            depth: 6,
            dir: 1,
        }
    }

    /// The chain length `k` (= the correlation distance of every restore).
    pub fn chain_len(&self) -> usize {
        self.k
    }

    /// PC of restore number `i`.
    pub fn restore_pc(&self, i: usize) -> u64 {
        self.slot.pc((3 * self.k + i) as u64)
    }
}

impl Kernel for SaveRestoreKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        self.iter += 1;
        let path = rng.gen_range(0..3usize);
        if self.iter.is_multiple_of(61) {
            self.phase_strides[path] = rng.gen_range(1..500) * 8;
        }
        self.depth = {
            // sticky random walk: call depth trends in one direction for a
            // while (phasic call behaviour), reversing rarely
            let d = self.depth as i64
                + if rng.gen_bool(0.85) {
                    self.dir
                } else {
                    self.dir = -self.dir;
                    self.dir
                };
            d.clamp(0, 12) as u64
        };
        let stack = s.mem_base + 0xC000 + self.depth * 256;
        // Defines: each path has its own pc range (0..k, k..2k, 2k..3k),
        // so each defining instruction sees only its own stream.
        for i in 0..self.k {
            let v = match self.hard {
                HardKind::Generational => mix64(self.values[path][i] ^ ((i as u64) << 32)),
                HardKind::NoisyRange => (rng.gen_range(0u64..1024) / 24) * 24,
                HardKind::PhasedStride => {
                    self.values[path][i].wrapping_add(self.phase_strides[path])
                }
            };
            self.values[path][i] = v;
            let r = s.reg((i % 6) as u8);
            out.push(DynInst::alu(
                s.pc((path * self.k + i) as u64),
                r,
                [Some(r), None],
                v,
            ));
        }
        // Restores: shared pcs at 3k..4k, at distance exactly k.
        for i in 0..self.k {
            let r = s.reg((i % 6) as u8);
            out.push(DynInst::load(
                s.pc((3 * self.k + i) as u64),
                r,
                s.reg(6),
                stack + 8 * i as u64,
                self.values[path][i],
            ));
        }
        // A serial consumer loop over the restored values: one static
        // instruction (a summing loop body) executed k times, each link
        // reading the previous link and one restore (value = restore + 17).
        // Its local value stream merges every restore's stream, so local
        // predictors fail; gDiff sees each link at the constant global
        // distance k from its restore. Only a predictor that catches the
        // restores can break this chain — the critical-path role
        // global-stride-predictable values play in the paper's §7 speedups.
        let r_chain = s.reg(7);
        for i in 0..self.k {
            out.push(DynInst::alu(
                s.pc(4 * self.k as u64),
                r_chain,
                [Some(r_chain), Some(s.reg((i % 6) as u8))],
                self.values[path][i].wrapping_add(17),
            ));
        }
        out.push(DynInst::branch(
            s.pc((4 * self.k + 1) as u64),
            s.reg(0),
            true,
            s.pc(0),
        ));
    }

    fn name(&self) -> &'static str {
        "save-restore"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{run_kernel, score};
    use super::*;
    use gdiff::GDiffPredictor;
    use predictors::{Capacity, DfcmPredictor, StridePredictor};

    fn kernel(gap: usize, hard: HardKind) -> CorrelationKernel {
        CorrelationKernel::new(
            KernelSlot::for_site(0),
            gap,
            &[4, 12],
            hard,
            FillerKind::Constant,
        )
    }

    fn gdiff_score(trace: &[crate::DynInst], order: usize) -> f64 {
        let mut p = GDiffPredictor::new(Capacity::Unbounded, order);
        score(trace, &mut p)
    }

    #[test]
    fn fill_value_equals_def_value() {
        let k = kernel(3, HardKind::Generational);
        let fill_pc = k.fill_pc();
        let trace = run_kernel(&mut kernel(3, HardKind::Generational), 5);
        let s = KernelSlot::for_site(0);
        let defs: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc <= s.pc(1) && i.produces_value())
            .map(|i| i.value)
            .collect();
        let fills: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc == fill_pc)
            .map(|i| i.value)
            .collect();
        assert_eq!(defs, fills);
    }

    #[test]
    fn local_predictors_fail_on_defines_and_fill() {
        let k = kernel(3, HardKind::Generational);
        let fill_pc = k.fill_pc();
        let trace = run_kernel(&mut kernel(3, HardKind::Generational), 300);
        // Constant fillers are easy; isolate the hard part by filtering to
        // the defines and the reload. (The `use = fill + c` instructions
        // share the fill's exact stride stream, so a shared-L2 DFCM
        // legitimately catches them — only the two-path merge is hard.)
        let s = KernelSlot::for_site(0);
        let hard: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.produces_value() && (i.pc <= s.pc(1) || i.pc == fill_pc))
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut df = DfcmPredictor::new(Capacity::Unbounded, 4, 16);
        assert!(score(&hard, &mut st) < 0.05, "stride must fail");
        // DFCM keeps a residual: during a run of same-path invocations the
        // reload's stride context coincides with the active define's, and
        // the shared level-2 table leaks the answer — a real DFCM effect.
        // It must stay a small minority.
        assert!(score(&hard, &mut df) < 0.20, "dfcm must mostly fail");
    }

    #[test]
    fn gdiff_catches_fill_and_uses_within_order() {
        let trace = run_kernel(&mut kernel(3, HardKind::Generational), 300);
        // gap 3 -> fill at distance 4; order 8 suffices. Fillers constant,
        // def and deref unpredictable: ideal accuracy ≈ 6/8 of the values.
        let acc = gdiff_score(&trace, 8);
        assert!(acc > 0.70, "gdiff must catch the correlated cluster: {acc}");
    }

    #[test]
    fn gap_beyond_order_defeats_gdiff_until_queue_grows() {
        use super::super::test_util::gdiff_accuracy_at;
        // gap 16: the fill sits at distance 17 — invisible to order 8,
        // visible to order 32 (the paper's gap-benchmark effect).
        let trace = run_kernel(&mut kernel(16, HardKind::Generational), 300);
        let fill_pc = kernel(16, HardKind::Generational).fill_pc();
        let q8 = gdiff_accuracy_at(&trace, fill_pc, 8);
        let q32 = gdiff_accuracy_at(&trace, fill_pc, 32);
        assert!(q8 < 0.10, "order 8 cannot reach distance 17: {q8}");
        assert!(q32 > 0.90, "order 32 must recover the fill: {q32}");
    }

    #[test]
    fn phased_stride_defines_are_mostly_stride_predictable() {
        let trace = run_kernel(&mut kernel(2, HardKind::PhasedStride), 400);
        // The defines (one bank per pc) stride steadily between phase
        // switches; the reload merges the banks and stays hard.
        let s = KernelSlot::for_site(0);
        let defs: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.produces_value() && i.pc <= s.pc(1))
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let acc = score(&defs, &mut st);
        assert!(
            acc > 0.8,
            "phased strides are locally predictable between switches: {acc}"
        );
    }

    #[test]
    fn noisy_range_resembles_figure1() {
        let trace = run_kernel(&mut kernel(2, HardKind::NoisyRange), 300);
        let s = KernelSlot::for_site(0);
        let defs: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc <= s.pc(1) && i.produces_value())
            .map(|i| i.value)
            .collect();
        assert!(defs.iter().all(|v| v % 24 == 0), "multiples of a granule");
        let distinct: std::collections::HashSet<_> = defs.iter().collect();
        assert!(distinct.len() > 8, "noisy, not constant");
    }

    #[test]
    fn save_restore_distance_is_exactly_k() {
        let mut k = SaveRestoreKernel::new(KernelSlot::for_site(0), 12, HardKind::Generational);
        let trace = run_kernel(&mut k, 200);
        let k2 = SaveRestoreKernel::new(KernelSlot::for_site(0), 12, HardKind::Generational);
        // Every restore: invisible at order 8, near-perfect at order 16.
        let restore = k2.restore_pc(5);
        let q8 = super::super::test_util::gdiff_accuracy_at(&trace, restore, 8);
        let q16 = super::super::test_util::gdiff_accuracy_at(&trace, restore, 16);
        assert!(q8 < 0.05, "q8={q8}");
        assert!(q16 > 0.95, "q16={q16}");
    }

    #[test]
    fn save_restore_defeats_local_predictors() {
        let mut k = SaveRestoreKernel::new(KernelSlot::for_site(0), 6, HardKind::Generational);
        let trace = run_kernel(&mut k, 200);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut df = DfcmPredictor::new(Capacity::Unbounded, 4, 16);
        assert!(score(&trace, &mut st) < 0.05);
        assert!(score(&trace, &mut df) < 0.05);
    }

    #[test]
    fn phased_save_restore_is_partially_local() {
        // PhasedStride values advance by a constant between switches: the
        // *defines* (one bank per path) are locally stride predictable most
        // of the time; the merged restores and chain are not.
        let k = 4usize;
        let mut kern = SaveRestoreKernel::new(KernelSlot::for_site(0), k, HardKind::PhasedStride);
        let trace = run_kernel(&mut kern, 400);
        let s = KernelSlot::for_site(0);
        let defs: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.produces_value() && i.pc < s.pc(3 * k as u64))
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let acc = score(&defs, &mut st);
        assert!(acc > 0.7, "{acc}");
    }

    #[test]
    fn random_fillers_are_hard_for_everyone() {
        let mut k = CorrelationKernel::new(
            KernelSlot::for_site(0),
            4,
            &[4],
            HardKind::Generational,
            FillerKind::Random,
        );
        let trace = run_kernel(&mut k, 200);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        assert!(score(&trace, &mut st) < 0.05);
    }
}
