//! Strided array sweeps (bzip2/gzip-style buffer processing).

use rand::rngs::SmallRng;

use super::{mix64, Kernel, KernelSlot};
use crate::DynInst;

/// What the array elements hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayData {
    /// `a[i] = base + i * delta` — element values stride with the sweep.
    Affine {
        /// Value of element 0.
        base: u64,
        /// Per-element increment.
        delta: u64,
    },
    /// Fixed pseudo-random contents — values repeat every sweep (context
    /// locality with period = array length).
    Hashed,
    /// Pseudo-random contents rewritten between sweeps (a data buffer, not
    /// a lookup table): values never repeat — unpredictable by everyone,
    /// while the *addresses* keep their sweep structure.
    Evolving,
}

/// How the sweep selects its next element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Indexing {
    /// Sequential sweep: addresses stride by `elem_size` (prefetchable,
    /// stride predictable).
    Sweep,
    /// Accesses through a shuffled (bijective) permutation of the index
    /// space — irregular addresses whose transition sequence repeats each
    /// lap (Markov territory, stride-hostile).
    Scattered,
}

/// Walks an array in a tight loop, emitting an index update, a load, a
/// derived ALU op and a loop branch per iteration, `burst` iterations per
/// scheduler visit.
///
/// Load *addresses* follow [`Indexing`]; load *values* depend on
/// [`ArrayData`]. The `len` parameter sets the data-cache footprint.
#[derive(Debug)]
pub struct ArrayWalkKernel {
    slot: KernelSlot,
    len: u64,
    elem_size: u64,
    data: ArrayData,
    /// Shuffled index table for [`Indexing::Scattered`].
    perm: Option<Vec<u32>>,
    burst: u64,
    pad: u64,
    idx: u64,
}

impl ArrayWalkKernel {
    /// Creates a sequential sweep over `len` elements of `elem_size`
    /// bytes, one iteration per scheduler visit.
    ///
    /// # Panics
    ///
    /// Panics if `len` or `elem_size` is zero.
    pub fn new(slot: KernelSlot, len: u64, elem_size: u64, data: ArrayData) -> Self {
        Self::with_burst(slot, len, elem_size, data, Indexing::Sweep, 1)
    }

    /// Full-control constructor: indexing mode and burst length.
    ///
    /// # Panics
    ///
    /// Panics if `len`, `elem_size` or `burst` is zero.
    pub fn with_burst(
        slot: KernelSlot,
        len: u64,
        elem_size: u64,
        data: ArrayData,
        indexing: Indexing,
        burst: u64,
    ) -> Self {
        assert!(len > 0 && elem_size > 0, "array dimensions must be nonzero");
        assert!(burst > 0, "burst must be nonzero");
        assert!(len <= u32::MAX as u64, "array too long");
        let perm = match indexing {
            Indexing::Sweep => None,
            Indexing::Scattered => {
                // Deterministic Fisher–Yates keyed by the slot: a genuinely
                // scrambled but lap-stable visit order.
                let mut p: Vec<u32> = (0..len as u32).collect();
                let mut state = slot.mem_base ^ 0xD6E8_FEB8_6659_FD93;
                for i in (1..p.len()).rev() {
                    state = mix64(state);
                    p.swap(i, (state % (i as u64 + 1)) as usize);
                }
                Some(p)
            }
        };
        ArrayWalkKernel {
            slot,
            len,
            elem_size,
            data,
            perm,
            burst,
            pad: 0,
            idx: 0,
        }
    }

    /// Adds `pad` dependent ALU operations per iteration (a serial address
    /// computation chain) — realistic body size for the pipeline studies.
    pub fn padded(mut self, pad: u64) -> Self {
        self.pad = pad;
        self
    }

    fn element(&self, i: u64) -> u64 {
        match self.data {
            ArrayData::Affine { base, delta } => base.wrapping_add(i.wrapping_mul(delta)),
            ArrayData::Hashed => mix64(self.slot.mem_base ^ i),
            ArrayData::Evolving => {
                let lap = self.idx / self.len;
                mix64(self.slot.mem_base ^ i ^ (lap << 32))
            }
        }
    }

    /// The array footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.len * self.elem_size
    }
}

impl Kernel for ArrayWalkKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, _rng: &mut SmallRng) {
        let s = self.slot;
        for it in 0..self.burst {
            let pos = self.idx % self.len;
            let i = match &self.perm {
                None => pos,
                Some(p) => p[pos as usize] as u64,
            };
            let addr = s.mem_base + i * self.elem_size;
            let v = self.element(i);
            let (r_i, r_v, r_t) = (s.reg(0), s.reg(1), s.reg(2));
            // index update (induction variable).
            out.push(DynInst::alu(s.pc(0), r_i, [Some(r_i), None], addr));
            // the sweep load.
            out.push(DynInst::load(s.pc(1), r_v, r_i, addr, v));
            // pointer bump derived from the address (strided, no
            // value-stream mirroring of the load).
            out.push(DynInst::alu(s.pc(2), r_t, [Some(r_i), None], addr + 8));
            // Loop-carried dependent work chain; half easy (affine in the
            // address), half hard (data dependent).
            for j in 0..self.pad {
                let value = if j % 3 == 2 {
                    mix64(addr ^ (j << 32) ^ 0xa7c3)
                } else {
                    addr.wrapping_add(24 * (j + 2))
                };
                out.push(DynInst::alu(
                    s.pc(4 + j),
                    r_t,
                    [Some(r_t), Some(r_i)],
                    value,
                ));
            }
            // loop branch: taken within the burst.
            out.push(DynInst::branch(s.pc(3), r_i, it + 1 != self.burst, s.pc(0)));
            self.idx += 1;
        }
    }

    fn name(&self) -> &'static str {
        "array-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{run_kernel, score};
    use super::*;
    use predictors::{Capacity, FcmPredictor, StridePredictor};

    #[test]
    fn affine_arrays_are_stride_predictable() {
        let mut k = ArrayWalkKernel::new(
            KernelSlot::for_site(0),
            4096,
            8,
            ArrayData::Affine {
                base: 100,
                delta: 16,
            },
        );
        let trace = run_kernel(&mut k, 500);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        assert!(score(&trace, &mut st) > 0.9);
    }

    #[test]
    fn hashed_arrays_defeat_stride_but_repeat_per_sweep() {
        let mut k = ArrayWalkKernel::new(KernelSlot::for_site(0), 16, 8, ArrayData::Hashed);
        let trace = run_kernel(&mut k, 400);
        // Values of the sweep load only (pc(1)): they cycle with period 16.
        let loads: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.pc == KernelSlot::for_site(0).pc(1))
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut fcm = FcmPredictor::new(Capacity::Unbounded, 2, 16);
        let s_acc = score(&loads, &mut st);
        let f_acc = score(&loads, &mut fcm);
        assert!(s_acc < 0.2, "stride fails on hashed contents: {s_acc}");
        assert!(
            f_acc > 0.8,
            "context predictor learns the repeating sweep: {f_acc}"
        );
    }

    #[test]
    fn addresses_sweep_and_wrap() {
        let mut k = ArrayWalkKernel::new(KernelSlot::for_site(0), 4, 8, ArrayData::Hashed);
        let trace = run_kernel(&mut k, 8);
        let addrs: Vec<u64> = trace.iter().filter_map(|i| i.mem_addr).collect();
        let base = KernelSlot::for_site(0).mem_base;
        assert_eq!(
            addrs,
            vec![
                base,
                base + 8,
                base + 16,
                base + 24,
                base,
                base + 8,
                base + 16,
                base + 24
            ]
        );
    }

    #[test]
    fn burst_branch_exits_at_burst_end() {
        let mut k = ArrayWalkKernel::with_burst(
            KernelSlot::for_site(0),
            64,
            8,
            ArrayData::Hashed,
            Indexing::Sweep,
            4,
        );
        let trace = run_kernel(&mut k, 2);
        let outcomes: Vec<bool> = trace
            .iter()
            .filter(|i| i.is_control())
            .map(|i| i.taken)
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn scattered_addresses_defeat_stride_but_repeat_per_lap() {
        use predictors::{MarkovConfig, MarkovPredictor, ValuePredictor};
        let mut k = ArrayWalkKernel::with_burst(
            KernelSlot::for_site(0),
            64,
            8,
            ArrayData::Hashed,
            Indexing::Scattered,
            8,
        );
        let trace = run_kernel(&mut k, 200);
        let s = KernelSlot::for_site(0);
        // Score address predictability of the load (pc 1).
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut mk = MarkovPredictor::new(MarkovConfig {
            entries: 4096,
            ways: 4,
        });
        let (mut st_ok, mut mk_ok, mut total) = (0u64, 0u64, 0u64);
        for i in trace.iter().filter(|i| i.pc == s.pc(1)) {
            let a = i.mem_addr.unwrap();
            total += 1;
            if st.step(i.pc, a) == Some(true) {
                st_ok += 1;
            }
            if mk.step(i.pc, a) == Some(true) {
                mk_ok += 1;
            }
        }
        assert!(
            (st_ok as f64) < 0.2 * total as f64,
            "stride fails: {st_ok}/{total}"
        );
        assert!(
            (mk_ok as f64) > 0.8 * total as f64,
            "markov learns the lap: {mk_ok}/{total}"
        );
    }
}
