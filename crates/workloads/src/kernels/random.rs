//! Incompressible-value kernel.

use rand::rngs::SmallRng;
use rand::Rng;

use super::{Kernel, KernelSlot};
use crate::DynInst;

/// Produces fresh pseudo-random values — the floor of predictability that
/// keeps every benchmark's accuracy below 100% (hash results, compressed
/// data, input-dependent computation).
#[derive(Debug)]
pub struct RandomKernel {
    slot: KernelSlot,
    per_block: usize,
    mask: u64,
}

impl RandomKernel {
    /// Creates a kernel emitting `per_block` random values per invocation,
    /// masked to `bits` significant bits.
    ///
    /// # Panics
    ///
    /// Panics if `per_block` is not in `1..=4` or `bits` not in `1..=64`.
    pub fn new(slot: KernelSlot, per_block: usize, bits: u32) -> Self {
        assert!((1..=4).contains(&per_block), "1..=4 values per block");
        assert!((1..=64).contains(&bits), "1..=64 bits");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        RandomKernel {
            slot,
            per_block,
            mask,
        }
    }
}

impl Kernel for RandomKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        for i in 0..self.per_block {
            let v = rng.gen::<u64>() & self.mask;
            let r = s.reg((i % 4) as u8);
            out.push(DynInst::alu(s.pc(i as u64), r, [Some(r), None], v));
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{run_kernel, score};
    use super::*;
    use predictors::{Capacity, DfcmPredictor, StridePredictor};

    #[test]
    fn defeats_all_predictors() {
        let mut k = RandomKernel::new(KernelSlot::for_site(0), 2, 32);
        let trace = run_kernel(&mut k, 500);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut df = DfcmPredictor::new(Capacity::Unbounded, 4, 16);
        assert!(score(&trace, &mut st) < 0.05);
        assert!(score(&trace, &mut df) < 0.05);
    }

    #[test]
    fn respects_bit_mask() {
        let mut k = RandomKernel::new(KernelSlot::for_site(0), 1, 8);
        let trace = run_kernel(&mut k, 100);
        assert!(trace.iter().all(|i| i.value < 256));
    }
}
