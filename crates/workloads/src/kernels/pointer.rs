//! Linked-structure traversal: the Figure 4 idiom and the mcf memory
//! behaviour.

use rand::rngs::SmallRng;
use rand::Rng;

use super::{mix64, Kernel, KernelSlot};
use crate::DynInst;

/// What the payload field of each node holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A pointer into a second arena allocated in step with the nodes —
    /// Figure 4's `->string` field, giving a near-constant stride between
    /// the two load *addresses and values*.
    CoAllocated,
    /// Incompressible per-node data.
    Random,
}

/// Traverses a linked list whose nodes were bump-allocated in traversal
/// order, as dynamic memory allocators tend to produce (the paper cites
/// Serrano & Wu \[26\]).
///
/// Per invocation it emits:
///
/// ```text
/// ld rN = [rP + 0]     // next pointer: value = rP + node_size (mostly)
/// ld rS = [rP + 8]     // payload (Figure 4's ->string)
/// ld rD = [rS + 0]     // dereference the payload pointer
/// bne …                // continue
/// ```
///
/// Because allocation order matches traversal order, the next-pointer load
/// has a near-constant stride in both value and address, and the payload
/// address is a constant offset from the just-loaded next pointer — global
/// stride locality at distance 1. A configurable fraction of allocation
/// *jitter* models freed/reused holes, and a large `nodes` count gives the
/// mcf-like data-cache footprint.
#[derive(Debug)]
pub struct PointerChaseKernel {
    slot: KernelSlot,
    node_size: u64,
    nodes: Vec<u64>,
    payloads: Vec<u64>,
    payload: PayloadKind,
    pos: usize,
    burst: u64,
    pad: u64,
    churn: f64,
    arena_top: u64,
}

impl PointerChaseKernel {
    /// Creates a chase over `n_nodes` nodes of `node_size` bytes with
    /// allocation jitter probability `jitter` (0.0 = perfectly regular).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2`, `node_size` is zero, or `jitter` is not in
    /// `0.0..=1.0`.
    pub fn new(
        slot: KernelSlot,
        n_nodes: usize,
        node_size: u64,
        jitter: f64,
        payload: PayloadKind,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(n_nodes >= 2, "need at least two nodes");
        assert!(node_size > 0, "node size must be nonzero");
        assert!((0.0..=1.0).contains(&jitter), "jitter is a probability");
        let mut addr = slot.mem_base;
        let mut paddr = slot.mem_base + 0x80_0000;
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut payloads = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            if rng.gen_bool(jitter) {
                // a freed hole was skipped by the allocator; hole sizes are
                // arbitrary (continuous alphabet), as real heaps produce
                addr += 8 * rng.gen_range(1..200);
            }
            nodes.push(addr);
            addr += node_size;
            payloads.push(match payload {
                PayloadKind::CoAllocated => paddr,
                PayloadKind::Random => slot.mem_base + (mix64(i as u64) & 0x7f_fff8),
            });
            paddr += 32; // strings allocated in step
        }
        PointerChaseKernel {
            slot,
            node_size,
            nodes,
            payloads,
            payload,
            pos: 0,
            burst: 1,
            pad: 0,
            churn: 0.0,
            arena_top: paddr,
        }
    }

    /// Sets the per-hop probability that the *next* node's payload string
    /// is reallocated (moved in the arena). Churn makes the address
    /// transition from a node to its payload go stale — the
    /// tag-hit-but-wrong behaviour that caps Markov predictor accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `churn` is not in `0.0..=1.0`.
    pub fn with_payload_churn(mut self, churn: f64) -> Self {
        assert!((0.0..=1.0).contains(&churn), "churn is a probability");
        self.churn = churn;
        self
    }

    /// Adds `pad` dependent ALU operations per hop (per-node work).
    pub fn padded(mut self, pad: u64) -> Self {
        self.pad = pad;
        self
    }

    /// Sets the number of node hops per scheduler visit (tight traversal
    /// loop). Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn with_hops(mut self, burst: u64) -> Self {
        assert!(burst > 0, "burst must be nonzero");
        self.burst = burst;
        self
    }

    /// The node footprint in bytes (drives cache behaviour).
    pub fn footprint(&self) -> u64 {
        self.nodes.len() as u64 * self.node_size
    }
}

impl Kernel for PointerChaseKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        for it in 0..self.burst {
            if self.churn > 0.0 && rng.gen_bool(self.churn) {
                // the next node's string was reallocated
                let next_pos = (self.pos + 1) % self.nodes.len();
                self.payloads[next_pos] = self.arena_top;
                self.arena_top += 32;
            }
            let cur = self.nodes[self.pos];
            let next_pos = (self.pos + 1) % self.nodes.len();
            let next = self.nodes[next_pos];
            let payload_ptr = self.payloads[self.pos];
            let (r_p, r_n, r_s, r_d) = (s.reg(0), s.reg(1), s.reg(2), s.reg(3));

            // ld next: value is the next node's address.
            out.push(DynInst::load(s.pc(0), r_n, r_p, cur, next));
            // ld payload pointer (the ->string field).
            out.push(DynInst::load(s.pc(1), r_s, r_p, cur + 8, payload_ptr));
            // dereference the payload.
            let deref = match self.payload {
                // the string's first field points 16 bytes further into the
                // co-allocated arena — constant stride from the payload ptr
                PayloadKind::CoAllocated => payload_ptr + 16,
                PayloadKind::Random => mix64(payload_ptr),
            };
            out.push(DynInst::load(s.pc(2), r_d, r_s, payload_ptr, deref));
            // advance the cursor (rP = rN).
            out.push(DynInst::alu(s.pc(3), r_p, [Some(r_n), None], next));
            // dependent per-node work on the current node address.
            let r_w = s.reg(5);
            for j in 0..self.pad {
                let src = if j == 0 { r_p } else { r_w };
                out.push(DynInst::alu(
                    s.pc(5 + j),
                    r_w,
                    [Some(src), None],
                    cur.wrapping_add(8 * (j + 1)),
                ));
            }
            // continue within the burst.
            out.push(DynInst::branch(s.pc(4), r_n, it + 1 != self.burst, s.pc(0)));
            self.pos = next_pos;
        }
    }

    fn name(&self) -> &'static str {
        "pointer-chase"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{gdiff_accuracy_at, run_kernel, score};
    use super::*;
    use predictors::{Capacity, StridePredictor};
    use rand::SeedableRng;

    fn kernel(jitter: f64) -> PointerChaseKernel {
        let mut rng = SmallRng::seed_from_u64(1);
        PointerChaseKernel::new(
            KernelSlot::for_site(0),
            64,
            40,
            jitter,
            PayloadKind::CoAllocated,
            &mut rng,
        )
    }

    #[test]
    fn regular_allocation_gives_constant_value_stride() {
        let trace = run_kernel(&mut kernel(0.0), 200);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        // Next pointers stride by node_size except at the wrap.
        let acc = score(&trace, &mut st);
        assert!(acc > 0.8, "{acc}");
    }

    #[test]
    fn payload_address_correlates_with_next_pointer() {
        // pc(1)'s value (payload ptr) strides in step with the node walk:
        // global stride at distance 1 from pc(0)'s value.
        let trace = run_kernel(&mut kernel(0.0), 200);
        let acc = gdiff_accuracy_at(&trace, KernelSlot::for_site(0).pc(1), 8);
        assert!(acc > 0.9, "{acc}");
    }

    #[test]
    fn jitter_creates_multi_stride_phases() {
        let regular = run_kernel(&mut kernel(0.0), 300);
        let jittery = run_kernel(&mut kernel(0.5), 300);
        let mut a = StridePredictor::new(Capacity::Unbounded);
        let mut b = StridePredictor::new(Capacity::Unbounded);
        let ra = score(&regular, &mut a);
        let rb = score(&jittery, &mut b);
        assert!(
            rb < ra,
            "jitter must reduce stride predictability: {rb} vs {ra}"
        );
    }

    #[test]
    fn footprint_scales_with_nodes() {
        assert_eq!(kernel(0.0).footprint(), 64 * 40);
    }

    #[test]
    fn addresses_stay_in_kernel_region() {
        let trace = run_kernel(&mut kernel(0.3), 100);
        let s = KernelSlot::for_site(0);
        for i in trace.iter().filter(|i| i.is_mem()) {
            let a = i.mem_addr.unwrap();
            assert!(a >= s.mem_base && a < s.mem_base + 0x0100_0000, "{a:#x}");
        }
    }
}
