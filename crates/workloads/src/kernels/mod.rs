//! Workload kernels: small program fragments, each reproducing one of the
//! value-generation idioms the paper identifies.
//!
//! | Kernel | Idiom | Paper reference |
//! |--------|-------|-----------------|
//! | [`LoopKernel`] | induction variables (local stride) | §2 computational locality |
//! | [`CorrelationKernel`] | spill/fill & `use = def + c` chains (global stride) | Figures 2, 3 |
//! | [`PointerChaseKernel`] | sequentially allocated linked structures | Figure 4, §7 (mcf) |
//! | [`ArrayWalkKernel`] | strided array sweeps | §2 |
//! | [`CallKernel`] | callee-save register save/restore | Figure 2 (spilling) |
//! | [`PeriodicKernel`] | repeating value sequences (context locality) | §2 |
//! | [`RandomKernel`] | incompressible values | §3 (gap) |
//! | [`BranchyKernel`] | data-dependent branches | §4 (execution variation) |
//!
//! Each kernel owns a PC range, a register window and a memory region, and
//! emits one basic block per invocation with *stable static PCs*, so
//! predictors see realistic per-instruction streams and the pipeline sees
//! realistic register dependences and memory traffic.

mod array;
mod branchy;
mod call;
mod correlation;
mod loops;
mod periodic;
mod pointer;
mod random;

pub use array::{ArrayData, ArrayWalkKernel, Indexing};
pub use branchy::BranchyKernel;
pub use call::CallKernel;
pub use correlation::{CorrelationKernel, FillerKind, HardKind, SaveRestoreKernel};
pub use loops::LoopKernel;
pub use periodic::PeriodicKernel;
pub use pointer::{PayloadKind, PointerChaseKernel};
pub use random::RandomKernel;

use rand::rngs::SmallRng;

use crate::DynInst;

/// The static resources assigned to one kernel instance: a PC range, a
/// register window and a private memory region.
///
/// PCs are word aligned; registers are an 8-register window starting at
/// `reg_base`; memory regions are 16 MiB apart so kernels never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSlot {
    /// First instruction address of the kernel's code.
    pub pc_base: u64,
    /// First architectural register of the kernel's window.
    pub reg_base: u8,
    /// Base address of the kernel's data region.
    pub mem_base: u64,
}

impl KernelSlot {
    /// The slot for site index `i` of a program.
    pub fn for_site(i: usize) -> Self {
        KernelSlot {
            pc_base: 0x0040_0000 + (i as u64) * 0x1000,
            reg_base: ((i % 7) * 8) as u8,
            mem_base: 0x1000_0000 + (i as u64) * 0x0100_0000,
        }
    }

    /// The PC of static instruction `idx` within this kernel.
    pub fn pc(&self, idx: u64) -> u64 {
        self.pc_base + idx * 4
    }

    /// Register `idx` (0..8) of this kernel's window.
    pub fn reg(&self, idx: u8) -> u8 {
        debug_assert!(idx < 8);
        self.reg_base + idx
    }
}

/// A workload kernel: emits one basic block of dynamic instructions per
/// invocation.
pub trait Kernel: std::fmt::Debug {
    /// Appends this invocation's dynamic instructions to `out`.
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng);

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// splitmix64 — the hard-value generator shared by kernels.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use rand::SeedableRng;

    /// Runs a kernel for `rounds` invocations and returns everything it
    /// emitted.
    pub fn run_kernel(k: &mut dyn Kernel, rounds: usize) -> Vec<DynInst> {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut out = Vec::new();
        for _ in 0..rounds {
            k.emit(&mut out, &mut rng);
        }
        out
    }

    /// Scores a predictor on the value-producing instructions of a trace.
    pub fn score(trace: &[DynInst], p: &mut dyn predictors::ValuePredictor) -> f64 {
        let (mut correct, mut total) = (0u64, 0u64);
        for i in trace.iter().filter(|i| i.produces_value()) {
            total += 1;
            if p.step(i.pc, i.value) == Some(true) {
                correct += 1;
            }
        }
        correct as f64 / total.max(1) as f64
    }

    /// gDiff accuracy for one static instruction: trains on the whole value
    /// stream, scores only predictions for `pc`.
    pub fn gdiff_accuracy_at(trace: &[DynInst], pc: u64, order: usize) -> f64 {
        use predictors::{Capacity, ValuePredictor};
        let mut p = gdiff::GDiffPredictor::new(Capacity::Unbounded, order);
        let (mut correct, mut total) = (0u64, 0u64);
        for i in trace.iter().filter(|i| i.produces_value()) {
            if i.pc == pc {
                total += 1;
                if p.predict(i.pc) == Some(i.value) {
                    correct += 1;
                }
            }
            p.update(i.pc, i.value);
        }
        correct as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_do_not_collide() {
        let a = KernelSlot::for_site(0);
        let b = KernelSlot::for_site(1);
        assert_ne!(a.pc_base, b.pc_base);
        assert_ne!(a.mem_base, b.mem_base);
        assert!(b.pc_base - a.pc_base >= 0x1000);
    }

    #[test]
    fn pcs_are_word_aligned() {
        let s = KernelSlot::for_site(3);
        assert_eq!(s.pc(0) % 4, 0);
        assert_eq!(s.pc(7) - s.pc(0), 28);
    }

    #[test]
    fn mix64_avalanches() {
        // Consecutive inputs give wildly different outputs.
        let d = mix64(1) ^ mix64(2);
        assert!(d.count_ones() > 16);
    }
}
