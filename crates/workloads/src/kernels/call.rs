//! Function call kernel: callee-save spill/fill through the stack.

use rand::rngs::SmallRng;
use rand::Rng;

use super::{mix64, Kernel, KernelSlot};
use crate::DynInst;

/// A function call with a prologue that saves callee-saved registers and an
/// epilogue that restores them — the register spilling the paper's Figure 2
/// traces back to.
///
/// Per invocation (one of two call sites, chosen per call — so the
/// restore's local value sequence merges two streams, as in Figure 2):
///
/// ```text
/// s0 = <caller's live value>   // def (pc 0 at site A, pc 1 at site B)
/// jal  f                       // call (pc 2)
/// ra = <link>                  // (pc 3)
/// sw   s0 -> [sp+0]            // prologue: save
/// sw   ra -> [sp+8]
/// <body: body_len ALU ops>
/// lw   s0 <- [sp+0]            // epilogue: restore (== the def's value)
/// lw   ra <- [sp+8]
/// jr   ra                      // return
/// ```
///
/// The restore loads re-produce values defined a constant distance earlier
/// in the global stream — global stride locality with stride 0 — while
/// being poorly predictable locally whenever the saved register's value
/// changes between calls.
#[derive(Debug)]
pub struct CallKernel {
    slot: KernelSlot,
    body_len: usize,
    s0: [u64; 2],
    locally_hard: bool,
    depth: u64,
    dir: i64,
}

impl CallKernel {
    /// Creates a call kernel with `body_len` ALU instructions between the
    /// save and restore.
    ///
    /// `locally_hard` controls whether the saved value is unpredictable
    /// between calls (`true`: random evolution — local predictors fail on
    /// the restores) or a simple counter (`false`).
    ///
    /// # Panics
    ///
    /// Panics if `body_len > 16`.
    pub fn new(slot: KernelSlot, body_len: usize, locally_hard: bool) -> Self {
        assert!(body_len <= 16, "body too long");
        CallKernel {
            slot,
            body_len,
            s0: [0xbeef, 0xf00d],
            locally_hard,
            depth: 6,
            dir: 1,
        }
    }

    /// PC of the `s0` restore load (useful for per-instruction analyses).
    pub fn restore_pc(&self) -> u64 {
        self.slot.pc(6 + self.body_len as u64)
    }
}

impl Kernel for CallKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        self.depth = {
            // sticky random walk: call depth trends in one direction for a
            // while (phasic call behaviour), reversing rarely
            let d = self.depth as i64
                + if rng.gen_bool(0.85) {
                    self.dir
                } else {
                    self.dir = -self.dir;
                    self.dir
                };
            d.clamp(0, 12) as u64
        };
        let sp = s.mem_base + 0xF000 + self.depth * 64;
        let (r_s0, r_ra, r_sp, r_t) = (s.reg(0), s.reg(1), s.reg(6), s.reg(2));
        let site = (rng.gen::<u8>() & 1) as usize;
        self.s0[site] = if self.locally_hard {
            mix64(self.s0[site] ^ rng.gen::<u64>())
        } else {
            self.s0[site] + 1
        };
        let s0 = self.s0[site];
        let ra = s.pc(site as u64);

        // def: the caller's live value (one of two call sites).
        out.push(DynInst::alu(
            s.pc(site as u64),
            r_s0,
            [Some(r_s0), None],
            s0,
        ));
        let mut pc = 2u64;
        out.push(DynInst::jump(s.pc(pc), s.pc(4))); // call
        pc += 1;
        out.push(DynInst::alu(s.pc(pc), r_ra, [None, None], ra)); // ra = link
        pc += 1;
        out.push(DynInst::store(s.pc(pc), r_s0, r_sp, sp)); // save s0
        pc += 1;
        out.push(DynInst::store(s.pc(pc), r_ra, r_sp, sp + 8)); // save ra
        pc += 1;
        // body
        let mut acc = s0;
        for i in 0..self.body_len {
            acc = acc.wrapping_add(16 + i as u64);
            out.push(DynInst::alu(s.pc(pc), r_t, [Some(r_t), None], acc));
            pc += 1;
        }
        // epilogue: restores (global stride-0 at a constant distance).
        out.push(DynInst::load(s.pc(pc), r_s0, r_sp, sp, s0));
        pc += 1;
        out.push(DynInst::load(s.pc(pc), r_ra, r_sp, sp + 8, ra));
        pc += 1;
        out.push(DynInst::jump(s.pc(pc), ra)); // return
    }

    fn name(&self) -> &'static str {
        "call"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{gdiff_accuracy_at, run_kernel, score};
    use super::*;
    use predictors::{Capacity, StridePredictor};

    #[test]
    fn restore_reproduces_saved_value() {
        let mut k = CallKernel::new(KernelSlot::for_site(0), 4, true);
        let restore_pc = k.restore_pc();
        let trace = run_kernel(&mut k, 10);
        let s = KernelSlot::for_site(0);
        let defs: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc <= s.pc(1) && i.produces_value())
            .map(|i| i.value)
            .collect();
        let restores: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc == restore_pc)
            .map(|i| i.value)
            .collect();
        assert_eq!(defs, restores);
    }

    #[test]
    fn hard_saved_values_defeat_local_but_not_gdiff() {
        let mut k = CallKernel::new(KernelSlot::for_site(0), 4, true);
        let restore_pc = k.restore_pc();
        let trace = run_kernel(&mut k, 300);
        let restores: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.pc == restore_pc)
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        assert!(
            score(&restores, &mut st) < 0.05,
            "restores are locally hard"
        );
        // Value producers between def and restore: ra + 4 body ops, so the
        // restore correlates with the def at distance 6 — within order 8.
        let acc = gdiff_accuracy_at(&trace, restore_pc, 8);
        assert!(acc > 0.9, "gdiff catches the spill/fill: {acc}");
    }

    #[test]
    fn easy_saved_values_are_stride_predictable() {
        let mut k = CallKernel::new(KernelSlot::for_site(0), 2, false);
        let trace = run_kernel(&mut k, 100);
        // Each call site's live value is a counter: the defines are
        // stride predictable per site.
        let s = KernelSlot::for_site(0);
        let defs: Vec<crate::DynInst> = trace
            .iter()
            .filter(|i| i.pc <= s.pc(1) && i.produces_value())
            .copied()
            .collect();
        let mut st = StridePredictor::new(Capacity::Unbounded);
        assert!(score(&defs, &mut st) > 0.9);
    }

    #[test]
    fn return_jumps_to_link_address() {
        let mut k = CallKernel::new(KernelSlot::for_site(0), 1, false);
        let trace = run_kernel(&mut k, 2);
        let s = KernelSlot::for_site(0);
        let rets: Vec<u64> = trace
            .iter()
            .filter(|i| i.op == crate::OpClass::Jump && i.pc != s.pc(2))
            .map(|i| i.target)
            .collect();
        assert_eq!(rets.len(), 2);
        assert!(rets.iter().all(|&t| t == s.pc(0) || t == s.pc(1)));
    }

    #[test]
    fn static_pcs_are_stable_across_invocations() {
        let mut k = CallKernel::new(KernelSlot::for_site(0), 3, true);
        let t1 = run_kernel(&mut k, 1);
        let mut k2 = CallKernel::new(KernelSlot::for_site(0), 3, true);
        let t2 = run_kernel(&mut k2, 1);
        let pcs1: Vec<u64> = t1.iter().map(|i| i.pc).collect();
        let pcs2: Vec<u64> = t2.iter().map(|i| i.pc).collect();
        assert_eq!(pcs1, pcs2);
    }
}
