//! Induction-variable kernel: the classic local-stride idiom.

use rand::rngs::SmallRng;
use rand::Rng;

use super::{Kernel, KernelSlot};
use crate::DynInst;

/// A *tight* loop body maintaining several induction variables.
///
/// Every scheduler visit runs a **burst** of `burst` back-to-back
/// iterations — the way real programs dwell in inner loops — each iteration
/// advancing every counter by its stride, emitting one ALU instruction per
/// counter and a loop-back branch (taken within the burst, falling through
/// at its end).
///
/// Tight iteration is what makes loop code friendly to gDiff: the same
/// static instruction recurs within a few values, so its own last value is
/// still inside the global value queue; counters sharing a stride
/// additionally correlate with each other at distance 1.
#[derive(Debug)]
pub struct LoopKernel {
    slot: KernelSlot,
    counters: Vec<(u64, u64)>, // (current, stride)
    burst: u64,
    pad: u64,
}

impl LoopKernel {
    /// Creates a loop kernel with the given `(initial, stride)` counters,
    /// running `burst` iterations per scheduler visit.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is empty or has more than 6 entries (the
    /// register window is 8 wide) or `burst` is zero.
    pub fn new(slot: KernelSlot, counters: &[(u64, u64)], burst: u64) -> Self {
        assert!(
            !counters.is_empty() && counters.len() <= 6,
            "1..=6 counters"
        );
        assert!(burst > 0, "burst must be nonzero");
        LoopKernel {
            slot,
            counters: counters.to_vec(),
            burst,
            pad: 0,
        }
    }

    /// Adds `pad` dependent ALU operations to the loop body (a serial
    /// computation chain on the first counter) — realistic body size and
    /// ILP for the pipeline studies. Returns `self` for chaining.
    pub fn padded(mut self, pad: u64) -> Self {
        self.pad = pad;
        self
    }
}

impl Kernel for LoopKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, rng: &mut SmallRng) {
        let s = self.slot;
        let n = self.counters.len() as u64;
        for it in 0..self.burst {
            for (i, (cur, stride)) in self.counters.iter_mut().enumerate() {
                *cur = cur.wrapping_add(*stride);
                let r = s.reg(i as u8);
                out.push(DynInst::alu(s.pc(i as u64), r, [Some(r), None], *cur));
            }
            // Loop-carried dependent work chain: every op reads and writes
            // the chain register (which also carries across iterations), so
            // the body serializes like real loop-carried computation. Half
            // the chain values are data-dependent (hard), half are affine
            // in the counter (easy) — the mix real loop bodies have.
            let c0 = self.counters[0].0;
            let r_chain = s.reg(6);
            for j in 0..self.pad {
                let value = if j % 3 == 2 {
                    super::mix64(c0 ^ (j << 32) ^ 0x5bd1)
                } else {
                    c0.wrapping_add(17 * (j + 1))
                };
                out.push(DynInst::alu(
                    s.pc(n + j),
                    r_chain,
                    [Some(r_chain), Some(s.reg(0))],
                    value,
                ));
            }
            // A data-dependent if inside the body (mostly taken), as real
            // loops have: keeps the front end honest.
            let data_taken = rng.gen_bool(0.92);
            out.push(DynInst::branch(
                s.pc(n + self.pad),
                s.reg(6),
                data_taken,
                s.pc(n + self.pad + 2),
            ));
            if !data_taken {
                out.push(DynInst::alu(
                    s.pc(n + self.pad + 1),
                    s.reg(5),
                    [Some(s.reg(0)), None],
                    c0 ^ 0x55,
                ));
            }
            let taken = it + 1 != self.burst;
            out.push(DynInst::branch(
                s.pc(n + self.pad + 2),
                s.reg(0),
                taken,
                s.pc(0),
            ));
        }
    }

    fn name(&self) -> &'static str {
        "loop"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{run_kernel, score};
    use super::*;
    use predictors::{Capacity, StridePredictor};

    fn kernel() -> LoopKernel {
        LoopKernel::new(KernelSlot::for_site(0), &[(0, 4), (100, 4), (0, 12)], 16)
    }

    #[test]
    fn counters_advance_by_stride() {
        let trace = run_kernel(&mut kernel(), 1);
        let c0: Vec<u64> = trace
            .iter()
            .filter(|i| i.pc == KernelSlot::for_site(0).pc(0))
            .map(|i| i.value)
            .collect();
        assert_eq!(c0.len(), 16, "one burst of 16 iterations");
        assert_eq!(&c0[..3], &[4, 8, 12]);
    }

    #[test]
    fn gdiff_catches_own_counter_within_burst() {
        use super::super::test_util::gdiff_accuracy_at;
        // The body is 3 counters + branch = 3 values per iteration; a
        // counter recurs at global distance 3 within the burst — inside an
        // order-8 queue.
        let trace = run_kernel(&mut kernel(), 200);
        let acc = gdiff_accuracy_at(&trace, KernelSlot::for_site(0).pc(0), 8);
        // The occasional not-taken data branch inserts an extra value,
        // perturbing the distance for ~2 iterations per event.
        assert!(acc > 0.7, "{acc}");
    }

    #[test]
    fn local_stride_predictor_near_perfect() {
        let trace = run_kernel(&mut kernel(), 200);
        let mut p = StridePredictor::new(Capacity::Unbounded);
        assert!(score(&trace, &mut p) > 0.95);
    }

    #[test]
    fn gdiff_catches_shared_stride_counters() {
        use super::super::test_util::gdiff_accuracy_at;
        // The second counter (same stride as the first) is predictable at
        // global distance 1 with constant diff.
        let trace = run_kernel(&mut kernel(), 200);
        let acc = gdiff_accuracy_at(&trace, KernelSlot::for_site(0).pc(1), 8);
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn branch_falls_through_at_burst_end() {
        let trace = run_kernel(&mut kernel(), 2);
        // Only look at the loop-back branch (the last pc of the body).
        let back_pc = KernelSlot::for_site(0).pc(3 + 2); // counters + pad(0) + data branch slots
        let outcomes: Vec<bool> = trace
            .iter()
            .filter(|i| i.is_control() && i.pc == back_pc)
            .map(|i| i.taken)
            .collect();
        assert_eq!(outcomes.len(), 32);
        assert_eq!(
            outcomes.iter().filter(|&&t| !t).count(),
            2,
            "one exit per burst"
        );
        assert!(!outcomes[15] && !outcomes[31]);
    }

    #[test]
    #[should_panic(expected = "counters")]
    fn too_many_counters_rejected() {
        let _ = LoopKernel::new(KernelSlot::for_site(0), &[(0, 1); 7], 4);
    }
}
