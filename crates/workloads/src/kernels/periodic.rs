//! Periodic-value kernel: pure context (FCM/DFCM-friendly) locality.

use rand::rngs::SmallRng;

use super::{Kernel, KernelSlot};
use crate::DynInst;

/// Produces values that cycle through a fixed pattern — the repeating,
/// non-arithmetic sequences that context predictors capture and stride
/// predictors cannot (§2's context-based locality model).
#[derive(Debug)]
pub struct PeriodicKernel {
    slot: KernelSlot,
    pattern: Vec<u64>,
    idx: usize,
    per_block: usize,
}

impl PeriodicKernel {
    /// Creates a kernel cycling through `pattern`, emitting `per_block`
    /// consecutive pattern values per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` has fewer than 2 values or `per_block` is zero
    /// or greater than 4.
    pub fn new(slot: KernelSlot, pattern: &[u64], per_block: usize) -> Self {
        assert!(pattern.len() >= 2, "a period needs at least two values");
        assert!((1..=4).contains(&per_block), "1..=4 values per block");
        PeriodicKernel {
            slot,
            pattern: pattern.to_vec(),
            idx: 0,
            per_block,
        }
    }

    /// The period length.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }
}

impl Kernel for PeriodicKernel {
    fn emit(&mut self, out: &mut Vec<DynInst>, _rng: &mut SmallRng) {
        let s = self.slot;
        for i in 0..self.per_block {
            let v = self.pattern[self.idx % self.pattern.len()];
            self.idx += 1;
            let r = s.reg((i % 4) as u8);
            out.push(DynInst::alu(s.pc(i as u64), r, [Some(r), None], v));
        }
        out.push(DynInst::branch(
            s.pc(self.per_block as u64),
            s.reg(0),
            !self.idx.is_multiple_of(self.pattern.len()),
            s.pc(0),
        ));
    }

    fn name(&self) -> &'static str {
        "periodic"
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{run_kernel, score};
    use super::*;
    use predictors::{Capacity, DfcmPredictor, StridePredictor};

    fn kernel() -> PeriodicKernel {
        // A period with no arithmetic structure.
        PeriodicKernel::new(KernelSlot::for_site(0), &[17, 3, 90, 41, 5], 1)
    }

    #[test]
    fn values_cycle() {
        let trace = run_kernel(&mut kernel(), 7);
        let vals: Vec<u64> = trace
            .iter()
            .filter(|i| i.produces_value())
            .map(|i| i.value)
            .collect();
        assert_eq!(vals, vec![17, 3, 90, 41, 5, 17, 3]);
    }

    #[test]
    fn context_predictor_wins_stride_loses() {
        let trace = run_kernel(&mut kernel(), 500);
        let mut st = StridePredictor::new(Capacity::Unbounded);
        let mut df = DfcmPredictor::new(Capacity::Unbounded, 4, 16);
        let s_acc = score(&trace, &mut st);
        let d_acc = score(&trace, &mut df);
        assert!(s_acc < 0.3, "stride: {s_acc}");
        assert!(d_acc > 0.9, "dfcm: {d_acc}");
    }

    #[test]
    #[should_panic(expected = "two values")]
    fn single_value_pattern_rejected() {
        let _ = PeriodicKernel::new(KernelSlot::for_site(0), &[1], 1);
    }
}
