//! Pluggable origins for dynamic instruction streams.
//!
//! Experiments consume a per-benchmark stream of [`DynInst`]s. Where that
//! stream comes from is an implementation detail: the synthetic program
//! models in this crate, or a trace captured to disk and replayed later.
//! [`TraceSource`] abstracts over the origin so the harness can run any
//! experiment against either without knowing which it got.
//!
//! This crate provides [`SyntheticSource`] (the benchmark models, seeded);
//! the `tracefile` crate provides a file-backed implementation.

use crate::{Benchmark, DynInst};

/// An origin of per-benchmark dynamic instruction streams.
///
/// Implementations must be deterministic: two calls to
/// [`stream`](TraceSource::stream) with the same benchmark yield the same
/// instruction sequence. Experiments take a fixed-length prefix of the
/// stream, so implementations may be infinite (synthetic models) or finite
/// (captured traces); a finite stream that is shorter than an experiment
/// needs simply ends early, and the experiment's driver decides whether
/// that is an error.
///
/// Sources are `Send + Sync` so one source can feed experiment cells
/// running on several scheduler threads at once; each call to `stream`
/// opens an independent iterator, so concurrent streams never share
/// cursor state (the iterators themselves stay thread-local).
pub trait TraceSource: Send + Sync {
    /// A short human-readable description of the origin (for reports and
    /// error messages), e.g. `"synthetic (seed 42)"` or a file path.
    fn describe(&self) -> String;

    /// Opens the instruction stream for `bench` from the beginning.
    fn stream(&self, bench: Benchmark) -> Box<dyn Iterator<Item = DynInst> + '_>;
}

/// The built-in synthetic program models, parameterized by seed.
///
/// This is the default source: [`stream`](TraceSource::stream) delegates to
/// [`Benchmark::build`], producing the same infinite deterministic stream
/// the experiments have always consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSource {
    seed: u64,
}

impl SyntheticSource {
    /// A synthetic source generating every benchmark from `seed`.
    pub fn new(seed: u64) -> Self {
        SyntheticSource { seed }
    }

    /// The seed all streams are generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl TraceSource for SyntheticSource {
    fn describe(&self) -> String {
        format!("synthetic (seed {})", self.seed)
    }

    fn stream(&self, bench: Benchmark) -> Box<dyn Iterator<Item = DynInst> + '_> {
        Box::new(bench.build(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_matches_direct_build() {
        let src = SyntheticSource::new(42);
        let via_source: Vec<DynInst> = src.stream(Benchmark::Gcc).take(1_000).collect();
        let direct: Vec<DynInst> = Benchmark::Gcc.build(42).take(1_000).collect();
        assert_eq!(via_source, direct);
    }

    #[test]
    fn streams_restart_from_the_beginning() {
        let src = SyntheticSource::new(7);
        let a: Vec<DynInst> = src.stream(Benchmark::Parser).take(100).collect();
        let b: Vec<DynInst> = src.stream(Benchmark::Parser).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn source_is_object_safe() {
        let src: Box<dyn TraceSource> = Box::new(SyntheticSource::new(1));
        assert!(src.describe().contains("seed 1"));
        assert_eq!(src.stream(Benchmark::Mcf).take(10).count(), 10);
    }
}
