//! The program scheduler: composes kernels into an infinite dynamic
//! instruction stream.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kernels::Kernel;
use crate::DynInst;

/// A synthetic program: a set of kernel *sites* executed in a fixed
/// schedule, like a main loop calling the same functions in the same order
/// every iteration.
///
/// The fixed schedule is what gives the global value stream its *stable
/// correlation distances* — the property real programs have because the hot
/// path executes the same instruction sequence each iteration, and the
/// property gDiff depends on. A per-site `skip_prob` models data-dependent
/// control flow that occasionally leaves sites out, jittering the distances
/// exactly the way alternate paths do in real code.
///
/// `Program` is an infinite iterator of [`DynInst`]s; take as many as the
/// experiment needs.
///
/// # Examples
///
/// ```
/// use workloads::{Benchmark, Program};
///
/// let trace: Vec<_> = Benchmark::Parser.build(42).take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// assert!(trace.iter().any(|i| i.produces_value()));
/// ```
#[derive(Debug)]
pub struct Program {
    sites: Vec<Box<dyn Kernel>>,
    schedule: Vec<usize>,
    skip_prob: f64,
    rng: SmallRng,
    buffer: VecDeque<DynInst>,
    cursor: usize,
}

impl Program {
    /// Creates a program from kernel sites and an execution schedule.
    ///
    /// `schedule` lists site indices in main-loop order; `skip_prob` is the
    /// probability that a scheduled site is skipped on a given round.
    ///
    /// # Panics
    ///
    /// Panics if `sites` or `schedule` is empty, a schedule entry is out of
    /// range, or `skip_prob` is not in `0.0..1.0`.
    pub fn new(
        sites: Vec<Box<dyn Kernel>>,
        schedule: Vec<usize>,
        skip_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(!sites.is_empty(), "a program needs at least one site");
        assert!(!schedule.is_empty(), "a program needs a schedule");
        assert!(
            schedule.iter().all(|&i| i < sites.len()),
            "schedule index out of range"
        );
        assert!(
            (0.0..1.0).contains(&skip_prob),
            "skip probability in 0.0..1.0"
        );
        Program {
            sites,
            schedule,
            skip_prob,
            rng: SmallRng::seed_from_u64(seed),
            buffer: VecDeque::new(),
            cursor: 0,
        }
    }

    /// Number of kernel sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    fn refill(&mut self) {
        let mut staging = Vec::new();
        // Emit sites until something lands in the buffer (skips can leave
        // a site silent).
        while staging.is_empty() {
            let site = self.schedule[self.cursor % self.schedule.len()];
            self.cursor += 1;
            if self.skip_prob > 0.0 && self.rng.gen_bool(self.skip_prob) {
                continue;
            }
            self.sites[site].emit(&mut staging, &mut self.rng);
        }
        self.buffer.extend(staging);
    }
}

impl Iterator for Program {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{KernelSlot, LoopKernel, RandomKernel};

    fn tiny_program(skip: f64, seed: u64) -> Program {
        let sites: Vec<Box<dyn Kernel>> = vec![
            Box::new(LoopKernel::new(KernelSlot::for_site(0), &[(0, 4)], 8)),
            Box::new(RandomKernel::new(KernelSlot::for_site(1), 1, 16)),
        ];
        Program::new(sites, vec![0, 1, 0], skip, seed)
    }

    #[test]
    fn stream_is_infinite_and_deterministic() {
        let a: Vec<_> = tiny_program(0.1, 7).take(500).collect();
        let b: Vec<_> = tiny_program(0.1, 7).take(500).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = tiny_program(0.1, 7).take(200).collect();
        let b: Vec<_> = tiny_program(0.1, 8).take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_multiplicity_is_respected() {
        // Site 0 appears twice per round, site 1 once: the loop kernel's
        // instructions should be roughly twice as frequent.
        let trace: Vec<_> = tiny_program(0.0, 7).take(3000).collect();
        let s0 = KernelSlot::for_site(0);
        let s1 = KernelSlot::for_site(1);
        let c0 = trace
            .iter()
            .filter(|i| i.pc >= s0.pc_base && i.pc < s0.pc_base + 0x1000)
            .count();
        let c1 = trace
            .iter()
            .filter(|i| i.pc >= s1.pc_base && i.pc < s1.pc_base + 0x1000)
            .count();
        // loop kernel emits 2 insts per invocation, random 1: expect 4:1.
        assert!(c0 > c1 * 3, "c0={c0} c1={c1}");
    }

    #[test]
    fn skips_perturb_but_do_not_starve() {
        let trace: Vec<_> = tiny_program(0.5, 7).take(1000).collect();
        assert_eq!(trace.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "schedule")]
    fn empty_schedule_rejected() {
        let sites: Vec<Box<dyn Kernel>> =
            vec![Box::new(RandomKernel::new(KernelSlot::for_site(0), 1, 16))];
        let _ = Program::new(sites, vec![], 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_site_index_rejected() {
        let sites: Vec<Box<dyn Kernel>> =
            vec![Box::new(RandomKernel::new(KernelSlot::for_site(0), 1, 16))];
        let _ = Program::new(sites, vec![1], 0.0, 1);
    }
}
