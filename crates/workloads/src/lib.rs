//! Synthetic SPECint2000-like workloads for the gDiff reproduction.
//!
//! The paper evaluates on SPECint2000 reference runs through a modified
//! SimpleScalar — neither of which can ship with an open-source
//! reproduction. This crate substitutes *mechanistic program models*: small
//! interpreted program fragments ([`kernels`]) with real registers, stable
//! static PCs, memory regions and control flow, composed by a fixed-order
//! scheduler ([`Program`]) into infinite dynamic instruction streams.
//!
//! The substitution is behaviour-preserving for the paper's purposes
//! because every value-locality idiom the paper attributes its results to
//! is reproduced *by construction* rather than painted on:
//!
//! * register spill/fill produces exact-value reuse at short, stable global
//!   distances (Figure 2);
//! * `use = def + constant` chains produce global strides (Figure 3);
//! * bump allocation gives linked-structure loads near-constant address
//!   and value strides (Figure 4);
//! * induction variables give local strides; repeating string/token
//!   patterns give context locality; compressed/hashed data gives the
//!   unpredictable floor.
//!
//! See `DESIGN.md` in the repository root for the full substitution
//! argument and the per-benchmark characterization.
//!
//! # Example
//!
//! ```
//! use workloads::Benchmark;
//!
//! let mut loads = 0;
//! for inst in Benchmark::Mcf.build(42).take(10_000) {
//!     if inst.op == workloads::OpClass::Load {
//!         loads += 1;
//!     }
//! }
//! assert!(loads > 1000, "mcf is load heavy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod inst;
pub mod kernels;
mod program;
mod source;
mod spec;
pub mod trace;

pub use inst::{DynInst, OpClass};
pub use program::Program;
pub use source::{SyntheticSource, TraceSource};
pub use spec::Benchmark;
