//! Reading and writing dynamic instruction traces.
//!
//! The synthetic benchmark models cover the paper's evaluation, but a
//! downstream user will eventually want to run the predictors and the
//! pipeline on *their own* traces. This module defines a simple,
//! line-oriented text format and (de)serializers for it, so any tracer
//! (Pin, DynamoRIO, QEMU plugins, a CVP-1 converter, …) can feed this
//! workspace.
//!
//! # Format
//!
//! One instruction per line, space-separated fields:
//!
//! ```text
//! <pc:hex> <op> [d<reg>] [s<reg>] [s<reg>] [v<value:hex>] [m<addr:hex>] [bT|bN <target:hex>]
//! ```
//!
//! * `op` — one of `alu mul div load store branch jump`
//! * `d<reg>` — destination register (value producers only)
//! * `s<reg>` — source registers (up to two)
//! * `v<value>` — produced value (hex)
//! * `m<addr>` — effective address (hex, loads/stores)
//! * `bT <target>` / `bN <target>` — branch taken/not-taken with target
//!
//! Lines starting with `#` and blank lines are ignored.
//!
//! # Examples
//!
//! ```
//! use workloads::trace::{parse_line, format_inst};
//! use workloads::DynInst;
//!
//! let inst = DynInst::load(0x400, 3, 29, 0x1000, 42);
//! let line = format_inst(&inst);
//! assert_eq!(parse_line(&line).unwrap(), inst);
//! ```

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use crate::{DynInst, OpClass};

/// An error encountered while parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number within the source the line came from.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn op_name(op: OpClass) -> &'static str {
    match op {
        OpClass::IntAlu => "alu",
        OpClass::IntMul => "mul",
        OpClass::IntDiv => "div",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::Branch => "branch",
        OpClass::Jump => "jump",
    }
}

fn op_from_name(name: &str) -> Option<OpClass> {
    Some(match name {
        "alu" => OpClass::IntAlu,
        "mul" => OpClass::IntMul,
        "div" => OpClass::IntDiv,
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        "branch" => OpClass::Branch,
        "jump" => OpClass::Jump,
        _ => return None,
    })
}

/// Serializes one instruction to its trace line (no trailing newline).
pub fn format_inst(inst: &DynInst) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:x} {}", inst.pc, op_name(inst.op));
    if let Some(d) = inst.dst {
        let _ = write!(s, " d{d}");
    }
    for src in inst.srcs.iter().flatten() {
        let _ = write!(s, " s{src}");
    }
    if inst.dst.is_some() {
        let _ = write!(s, " v{:x}", inst.value);
    }
    if let Some(a) = inst.mem_addr {
        let _ = write!(s, " m{a:x}");
    }
    if inst.is_control() {
        let _ = write!(
            s,
            " b{} {:x}",
            if inst.taken { "T" } else { "N" },
            inst.target
        );
    }
    s
}

/// Parses one trace line (see the module docs for the format).
///
/// Equivalent to [`parse_line_at`] with line number 1; use that variant
/// when the line came from a known position in a larger source.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
pub fn parse_line(line: &str) -> Result<DynInst, ParseTraceError> {
    parse_line_at(line, 1)
}

/// Parses one trace line known to sit at 1-based line `line_no`.
///
/// Every error path stamps `line_no` into the returned error, so callers
/// never see a placeholder line number.
///
/// # Errors
///
/// Returns [`ParseTraceError`] carrying `line_no` on malformed input.
pub fn parse_line_at(line: &str, line_no: usize) -> Result<DynInst, ParseTraceError> {
    let err = |message: String| ParseTraceError {
        line: line_no,
        message,
    };
    let mut fields = line.split_whitespace();
    let pc = u64::from_str_radix(fields.next().ok_or_else(|| err("empty line".into()))?, 16)
        .map_err(|e| err(format!("bad pc: {e}")))?;
    let op_str = fields.next().ok_or_else(|| err("missing op".into()))?;
    let op = op_from_name(op_str).ok_or_else(|| err(format!("unknown op `{op_str}`")))?;

    let mut inst = DynInst {
        pc,
        op,
        dst: None,
        srcs: [None, None],
        value: 0,
        mem_addr: None,
        taken: false,
        target: 0,
    };
    let mut n_src = 0;
    let mut expect_target = false;
    for f in fields {
        if expect_target {
            inst.target =
                u64::from_str_radix(f, 16).map_err(|e| err(format!("bad target: {e}")))?;
            expect_target = false;
            continue;
        }
        // Split after the first *character*: `split_at(1)` would panic on
        // a multi-byte first char, and garbage input must error, not panic.
        let first_len = f.chars().next().map_or(0, char::len_utf8);
        let (tag, rest) = f.split_at(first_len);
        match tag {
            "d" => inst.dst = Some(rest.parse().map_err(|e| err(format!("bad dst: {e}")))?),
            "s" => {
                if n_src >= 2 {
                    return Err(err("more than two sources".into()));
                }
                inst.srcs[n_src] = Some(rest.parse().map_err(|e| err(format!("bad src: {e}")))?);
                n_src += 1;
            }
            "v" => {
                inst.value =
                    u64::from_str_radix(rest, 16).map_err(|e| err(format!("bad value: {e}")))?
            }
            "m" => {
                inst.mem_addr =
                    Some(u64::from_str_radix(rest, 16).map_err(|e| err(format!("bad addr: {e}")))?)
            }
            "b" => {
                inst.taken = match rest {
                    "T" => true,
                    "N" => false,
                    other => return Err(err(format!("bad branch outcome `{other}`"))),
                };
                expect_target = true;
            }
            other => return Err(err(format!("unknown field tag `{other}`"))),
        }
    }
    if expect_target {
        return Err(err("branch outcome without target".into()));
    }
    if inst.is_control() && inst.op == OpClass::Jump {
        inst.taken = true;
    }
    Ok(inst)
}

/// Writes a trace to `w`, one line per instruction.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, insts: impl IntoIterator<Item = DynInst>) -> io::Result<()> {
    for inst in insts {
        writeln!(w, "{}", format_inst(&inst))?;
    }
    Ok(())
}

/// Reads a trace from `r`, skipping comments and blank lines.
///
/// Returns an iterator so arbitrarily large traces stream without
/// buffering; each item is the parsed instruction or a positioned error.
pub fn read_trace<R: BufRead>(r: R) -> impl Iterator<Item = Result<DynInst, ParseTraceError>> {
    r.lines().enumerate().filter_map(|(i, line)| match line {
        Err(e) => Some(Err(ParseTraceError {
            line: i + 1,
            message: format!("io error: {e}"),
        })),
        Ok(l) => {
            let t = l.trim();
            if t.is_empty() || t.starts_with('#') {
                None
            } else {
                Some(parse_line_at(t, i + 1))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn round_trips_every_instruction_kind() {
        let insts = vec![
            DynInst::alu(0x400, 3, [Some(1), Some(2)], 0xdead_beef),
            DynInst::mul(0x404, 4, [Some(3), None], 7),
            DynInst::load(0x408, 5, 29, 0x1000_0000, 42),
            DynInst::store(0x40c, 5, 29, 0x1000_0008),
            DynInst::branch(0x410, 5, true, 0x400),
            DynInst::branch(0x414, 5, false, 0x400),
            DynInst::jump(0x418, 0x8000),
        ];
        for inst in insts {
            let line = format_inst(&inst);
            assert_eq!(parse_line(&line).unwrap(), inst, "line: {line}");
        }
    }

    #[test]
    fn round_trips_a_whole_benchmark_prefix() {
        let original: Vec<DynInst> = Benchmark::Gcc.build(7).take(5_000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        let parsed: Vec<DynInst> = read_trace(io::Cursor::new(buf))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n400 alu d1 v2a\n   \n# another\n404 jump bT 400\n";
        let parsed: Vec<DynInst> = read_trace(io::Cursor::new(text))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].value, 0x2a);
        assert!(parsed[1].taken);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "400 alu d1 v2a\nbogus line here\n";
        let results: Vec<_> = read_trace(io::Cursor::new(text)).collect();
        assert!(results[0].is_ok());
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.line, 2);
        assert!(format!("{e}").contains("line 2"));
    }

    #[test]
    fn mid_file_errors_report_their_own_line() {
        // Line 4 is the malformed one; comments and blanks still count
        // toward line numbering even though they produce no items.
        let text = "# header\n400 alu d1 v2a\n\n404 frobnicate\n408 alu d2 v3\n";
        let results: Vec<_> = read_trace(io::Cursor::new(text)).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.line, 4, "error must carry the malformed line's number");
        assert!(e.message.contains("frobnicate"));
        assert!(results[2].is_ok());
    }

    #[test]
    fn parse_line_at_stamps_every_error_path() {
        for bad in [
            "",
            "zzz alu",
            "400",
            "400 frobnicate",
            "400 alu d1 s2 s3 s4 v0",
            "400 alu dX v0",
            "400 alu sX d1 v0",
            "400 alu d1 vZZ",
            "400 load d1 s2 v0 mZZ",
            "400 branch bT",
            "400 branch bX 10",
            "400 branch bT ZZ",
            "400 alu q1",
        ] {
            let e = parse_line_at(bad, 37).unwrap_err();
            assert_eq!(e.line, 37, "line not stamped for input {bad:?}: {e}");
        }
    }

    #[test]
    fn rejects_malformed_fields() {
        assert!(parse_line("zzz alu").is_err());
        assert!(parse_line("400 frobnicate").is_err());
        assert!(parse_line("400 alu d1 s2 s3 s4 v0").is_err());
        assert!(parse_line("400 branch bT").is_err());
        assert!(parse_line("400 branch bX 10").is_err());
        // Multi-byte first character in a field: error, not panic.
        assert!(parse_line("400 alu \u{e9}1").is_err());
    }
}
