//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//!
//! * [`rngs::SmallRng`] — implemented as xoshiro256++ (the same algorithm
//!   family upstream `SmallRng` uses on 64-bit targets), seeded from a
//!   `u64` through SplitMix64;
//! * the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`;
//! * the [`SeedableRng`] constructor trait.
//!
//! Streams are deterministic for a given seed, high quality (xoshiro256++
//! passes BigCrush), and unbiased (`gen_range` uses Lemire's widening
//! multiply with rejection). They are *not* bit-identical to upstream
//! `rand` — the workspace only relies on determinism and statistical
//! quality, never on exact upstream streams.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a random bit stream (upstream: the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniformly sampleable over a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_range(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw from `[0, range)` via Lemire's method.
fn lemire_u64(rng: &mut impl RngCore, range: u64) -> u64 {
    debug_assert!(range > 0);
    // Accept when the low product half clears 2^64 mod range.
    let zone = range.wrapping_neg() % range;
    loop {
        let wide = (rng.next_u64() as u128) * (range as u128);
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + lemire_u64(rng, (high - low) as u64) as $t
            }
        }
    )*};
}
sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
    )*};
}
sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample(self, rng: &mut impl RngCore) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        if low == 0 && high == u64::MAX {
            return rng.next_u64();
        }
        low + lemire_u64(rng, high - low + 1)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range (`low..high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;

    /// Upstream's `StdRng`; the same engine here.
    pub type StdRng = SmallRng;
}

/// A small, fast, high-quality generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the xoshiro authors' recommended seeding.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(1u64..6);
            assert!((1..6).contains(&v));
            seen[v as usize] = true;
        }
        assert!(
            seen[1..6].iter().all(|&s| s),
            "all values reached: {seen:?}"
        );
        for _ in 0..100 {
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.85)).count();
        assert!((8_200..8_800).contains(&hits), "p=0.85 gave {hits}/10000");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_u8_draws_is_centered() {
        let mut rng = SmallRng::seed_from_u64(5);
        let sum: u64 = (0..10_000).map(|_| rng.gen::<u8>() as u64).sum();
        let mean = sum as f64 / 10_000.0;
        assert!((120.0..135.0).contains(&mean), "mean {mean}");
    }
}
