//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its benches use: [`Criterion`], benchmark groups with
//! throughput annotations, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then a timed batch
//! sized to run for roughly `measurement_millis` — and results print as
//! one line per benchmark (mean time per iteration, plus throughput when
//! annotated). There is no statistical analysis, HTML report, or baseline
//! comparison; for trajectory tracking this workspace uses the harness's
//! machine-readable JSON reports instead.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a name and a parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, running it enough times to smooth scheduler noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(self.iters_hint);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((t0.elapsed(), iters));
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_millis: 60,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_millis: self.measurement_millis,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mm = self.measurement_millis;
        run_one(&id.into().id, None, mm, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_millis: u64,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work each iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for upstream compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrinks or grows the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_millis = d.as_millis().max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, self.measurement_millis, f);
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream prints a summary here; this stand-in
    /// prints per-benchmark lines eagerly).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mm: u64, mut f: F) {
    let mut b = Bencher {
        iters_hint: mm,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) => {
            let per_iter = total.as_nanos() as f64 / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  {:>10.1} Melem/s", n as f64 / per_iter * 1e3),
                Throughput::Bytes(n) => format!("  {:>10.1} MB/s", n as f64 / per_iter * 1e3),
            });
            println!(
                "{id:<48} {:>12.1} ns/iter{}",
                per_iter,
                rate.unwrap_or_default()
            );
        }
        None => println!("{id:<48} (no measurement)"),
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("sum", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x * 2)
            })
        });
        g.finish();
        assert!(ran > 0, "closure must actually run");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("q=8").id, "q=8");
    }
}
