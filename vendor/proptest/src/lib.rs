//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest its property tests actually use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` inner attribute);
//! * integer-range, tuple, [`any`], [`collection::vec`] and
//!   [`Strategy::prop_map`] strategies;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from upstream: failing cases are reported by panic without
//! shrinking, and `.proptest-regressions` files are ignored. Case
//! generation is fully deterministic — the RNG is seeded from the test
//! name and case index, so failures reproduce exactly under `--nocapture`
//! reruns.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// A generator of random values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut rand::rngs::SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut rand::rngs::SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Types with a canonical "any value" strategy (upstream: `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut rand::rngs::SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut rand::rngs::SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (upstream: `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s of `size.start..size.end` distinct elements.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Generates a `HashSet` with a size drawn from `size`.
    pub fn hash_set<S>(elem: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.start..self.size.end);
            let mut out = std::collections::HashSet::with_capacity(n);
            // Duplicates shrink the set below `n`; retry a bounded number of
            // times so narrow element domains still terminate.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(100) + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stand-in runs in debug builds on
        // whole-pipeline properties, so it trades cases for turnaround.
        ProptestConfig { cases: 64 }
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> rand::rngs::SmallRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    // One closure per case so prop_assume! can skip via
                    // early return.
                    let mut __run = || $body;
                    __run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy,
    };

    /// Re-export hub so `prop::collection::vec(...)` works after a glob
    /// import, as with upstream's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn maps_apply(v in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments and extra attributes survive expansion.
        #[test]
        fn config_override_applies(t in (any::<bool>(), 0u8..3)) {
            let (b, small) = t;
            prop_assert!(small < 3 || b);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::__case_rng("t", 0).next_u64();
        let b = crate::__case_rng("t", 0).next_u64();
        let c = crate::__case_rng("t", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
